"""HNSW — Hierarchical Navigable Small World graphs (Malkov et al.).

The paper points out that once trajectories are embedded as vectors,
"state-of-the-art indexing techniques (e.g., HNSW) can be immediately
applied ... for nearest neighbor search".  This is a compact, dependency-
free implementation of that index: multi-layer proximity graphs searched
greedily from the top layer down, with beam (``ef``) search on the bottom
layer.  Approximate by design; the test suite measures recall against the
brute-force oracle.

Thread-safety contract (relied on by :mod:`repro.serve`): every public
method — :meth:`HNSWIndex.add`, :meth:`HNSWIndex.query`,
:meth:`HNSWIndex.query_batch` and ``len()`` — takes an internal lock, so
any number of reader threads may query while one writer inserts.  A query
observes the index either before or after a concurrent insert, never a
half-linked graph, and never returns an id ``>= len(index)`` as seen at
the moment the query completed.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..obs.lockstats import new_rlock
from ..obs.metrics import get_registry
from ..obs.trace import annotate

__all__ = ["HNSWIndex"]


class HNSWIndex:
    """Approximate k-NN index over vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Maximum out-degree per node on the upper layers (bottom layer
        allows ``2 * m``).
    ef_construction:
        Beam width while inserting; larger builds a better graph, slower.
    seed:
        Seed for the geometric level sampling.
    """

    def __init__(self, dim: int, m: int = 8, ef_construction: int = 64, seed: int = 0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if m < 2:
            raise ValueError("m must be >= 2")
        if ef_construction < 1:
            raise ValueError("ef_construction must be >= 1")
        self.dim = dim
        self.m = m
        self.ef_construction = ef_construction
        self._rng = np.random.default_rng(seed)
        self._level_mult = 1.0 / math.log(m)
        self.vectors: List[np.ndarray] = []
        # neighbors[layer][node] -> list of neighbor ids
        self._neighbors: List[Dict[int, List[int]]] = []
        self._entry: Optional[int] = None
        self._max_level = -1
        # Guards graph mutation and search; reentrant so query_batch can
        # delegate to the single-query path while already holding it.
        self._lock = new_rlock("index.hnsw")

    def __len__(self) -> int:
        with self._lock:
            return len(self.vectors)

    @property
    def nbytes(self) -> int:
        """Exact payload bytes: vector buffers + 8 bytes per graph link.

        Vector data is the numpy buffer size; each neighbour link is
        accounted as one 8-byte id (what a packed adjacency array would
        store), deliberately excluding Python container overhead so the
        number tracks the structure's information content — the figure
        the bytes-per-trajectory gate compares across compression PRs.
        """
        with self._lock:
            vector_bytes = sum(v.nbytes for v in self.vectors)
            link_bytes = 8 * sum(
                len(links) for layer in self._neighbors for links in layer.values()
            )
        return vector_bytes + link_bytes

    # ------------------------------------------------------------------
    def _distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = a - b
        return float(diff @ diff)  # squared L2: same ordering, cheaper

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def _search_layer(
        self, query: np.ndarray, entry: int, ef: int, layer: int
    ) -> List[Tuple[float, int]]:
        """Beam search one layer; returns up to ``ef`` (dist, id) ascending."""
        visited: Set[int] = {entry}
        d0 = self._distance(query, self.vectors[entry])
        candidates = [(d0, entry)]  # min-heap by distance
        best = [(-d0, entry)]  # max-heap of current ef best
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0]:
                break
            for neighbor in self._neighbors[layer].get(node, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                d = self._distance(query, self.vectors[neighbor])
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(best, (-d, neighbor))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, i) for d, i in best)

    def _select_neighbors(self, candidates: List[Tuple[float, int]], m: int) -> List[int]:
        return [i for _, i in candidates[:m]]

    # ------------------------------------------------------------------
    def add(self, vector: np.ndarray) -> int:
        """Insert one vector; returns its id.  Safe under concurrent queries."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of dim {self.dim}, got {vector.shape}")
        with self._lock:
            return self._add_locked(vector)

    def _add_locked(self, vector: np.ndarray) -> int:
        node = len(self.vectors)
        self.vectors.append(vector)
        get_registry().counter("index.hnsw.inserts").inc()
        level = self._random_level()
        while len(self._neighbors) <= level:
            self._neighbors.append({})
        for l in range(level + 1):
            self._neighbors[l].setdefault(node, [])

        if self._entry is None:
            self._entry = node
            self._max_level = level
            return node

        entry = self._entry
        # Greedy descent through layers above the new node's level.
        for l in range(self._max_level, level, -1):
            entry = self._search_layer(vector, entry, ef=1, layer=l)[0][1]
        # Connect on each layer from min(level, max_level) down to 0.
        for l in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, entry, self.ef_construction, l)
            max_degree = self.m * 2 if l == 0 else self.m
            chosen = self._select_neighbors(candidates, max_degree)
            self._neighbors[l][node] = list(chosen)
            for other in chosen:
                links = self._neighbors[l].setdefault(other, [])
                links.append(node)
                if len(links) > max_degree:
                    # Prune the farthest link to keep degrees bounded.
                    dists = [
                        (self._distance(self.vectors[other], self.vectors[x]), x)
                        for x in links
                    ]
                    dists.sort()
                    self._neighbors[l][other] = [x for _, x in dists[:max_degree]]
            entry = chosen[0] if chosen else entry

        if level > self._max_level:
            self._max_level = level
            self._entry = node
        return node

    def add_batch(self, vectors: np.ndarray) -> List[int]:
        """Insert many vectors; returns their ids."""
        return [self.add(v) for v in np.asarray(vectors, dtype=np.float64)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """One consistent, picklable snapshot of the whole graph.

        Everything :meth:`from_state` needs to answer queries identically
        to this instance: vectors, per-layer adjacency, entry point and
        construction parameters.  The sharded serving tier ships these
        across the process boundary so a coordinator can rebuild a
        worker's shard in-process without re-inserting.
        """
        with self._lock:
            return {
                "dim": self.dim,
                "m": self.m,
                "ef_construction": self.ef_construction,
                "vectors": [np.array(v) for v in self.vectors],
                "neighbors": [
                    {node: list(links) for node, links in layer.items()}
                    for layer in self._neighbors
                ],
                "entry": self._entry,
                "max_level": self._max_level,
            }

    @classmethod
    def from_state(cls, state: dict) -> "HNSWIndex":
        """Rebuild an index from :meth:`state_dict` output.

        Queries on the rebuilt index traverse the identical graph, so
        results match the source instance exactly (the RNG stream starts
        fresh — only future inserts can diverge).
        """
        index = cls(
            state["dim"], m=state["m"], ef_construction=state["ef_construction"]
        )
        with index._lock:
            index.vectors = [np.asarray(v, dtype=np.float64) for v in state["vectors"]]
            index._neighbors = [
                {int(node): list(links) for node, links in layer.items()}
                for layer in state["neighbors"]
            ]
            index._entry = state["entry"]
            index._max_level = state["max_level"]
        return index

    def query(self, vector: np.ndarray, k: int = 1, ef: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate k nearest neighbours: ``(distances, ids)`` ascending.

        ``ef`` (beam width, >= k) trades recall for speed; defaults to
        ``max(ef_construction, k)``.  Safe under a concurrent :meth:`add`.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of dim {self.dim}, got {vector.shape}")
        with self._lock:
            return self._query_locked(vector, k, ef)

    def query_batch(
        self, vectors: np.ndarray, k: int = 1, ef: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Query many vectors under one lock acquisition.

        Returns ``(distances, ids)`` of shape (Q, k) each, row ``q`` sorted
        ascending.  The whole batch sees one consistent index snapshot —
        useful for the serving layer, which answers coalesced requests
        against the same database state.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (Q, {self.dim}) query stack, got {vectors.shape}")
        with self._lock:
            out = [self._query_locked(v, k, ef) for v in vectors]
        dists = np.stack([d for d, _ in out]) if out else np.zeros((0, k))
        ids = np.stack([i for _, i in out]) if out else np.zeros((0, k), dtype=int)
        return dists, ids

    def _query_locked(
        self, vector: np.ndarray, k: int, ef: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self._entry is None:
            raise RuntimeError("index is empty")
        if not 1 <= k <= len(self.vectors):
            raise ValueError(f"k must be in [1, {len(self.vectors)}]")
        ef = max(ef if ef is not None else self.ef_construction, k)
        entry = self._entry
        visited = 0
        for l in range(self._max_level, 0, -1):
            layer_best = self._search_layer(vector, entry, ef=1, layer=l)
            visited += len(layer_best)
            entry = layer_best[0][1]
        found = self._search_layer(vector, entry, ef=ef, layer=0)
        visited += len(found)
        found = found[:k]
        registry = get_registry()
        registry.counter("index.hnsw.queries").inc()
        registry.counter("index.hnsw.candidates_scanned").inc(visited)
        # Attribute graph-search effort on the active request trace (the
        # serving layer's "index" span); no-op outside a trace.
        annotate(hnsw_candidates=visited, ef=ef)
        ids = np.array([i for _, i in found], dtype=int)
        # Candidate distances are squared L2 values, nonnegative by
        # construction; no eps needed on this no-gradient search path.
        dists = np.sqrt(np.array([d for d, _ in found]))  # lint: allow(N002)
        return dists, ids
