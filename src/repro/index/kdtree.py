"""A from-scratch k-d tree for k-nearest-neighbour queries.

Traj2SimVec (one of the paper's baselines) simplifies every trajectory to a
fixed-length vector, stores those vectors in a k-d tree, and draws its
"near" training samples from each anchor's k nearest neighbours.  This tree
backs that sampling strategy (and the TMN-kd ablation of Table IV).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["KDTree"]


@dataclass
class _Node:
    axis: int
    split: float
    index: int  # index of the point stored at this node
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class KDTree:
    """Static k-d tree built once over a point matrix.

    Parameters
    ----------
    points:
        Array (n, d) of vectors to index.
    leaf_size:
        Subtrees at or below this size are stored as flat leaves and
        scanned linearly — the classic performance trade-off.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 16):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got {points.shape}")
        if len(points) == 0:
            raise ValueError("cannot index zero points")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = points
        self.leaf_size = leaf_size
        self._leaves: List[np.ndarray] = []
        self._root = self._build(np.arange(len(points)), depth=0)

    def _build(self, idx: np.ndarray, depth: int):
        if len(idx) <= self.leaf_size:
            self._leaves.append(idx)
            return ("leaf", len(self._leaves) - 1)
        axis = depth % self.points.shape[1]
        values = self.points[idx, axis]
        order = np.argsort(values, kind="stable")
        idx = idx[order]
        mid = len(idx) // 2
        node = _Node(axis=axis, split=float(self.points[idx[mid], axis]), index=int(idx[mid]))
        node.left = self._build(idx[:mid], depth + 1)
        node.right = self._build(idx[mid + 1 :], depth + 1)
        return node

    def query(self, point: np.ndarray, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """k nearest neighbours of ``point``.

        Returns ``(distances, indices)`` sorted by increasing distance.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.points.shape[1],):
            raise ValueError(
                f"query point must have dim {self.points.shape[1]}, got {point.shape}"
            )
        if not 1 <= k <= len(self.points):
            raise ValueError(f"k must be in [1, {len(self.points)}]")
        # Max-heap of (-dist, index) holding the best k found so far.
        heap: List[Tuple[float, int]] = []

        def consider(indices: np.ndarray) -> None:
            if len(indices) == 0:
                return
            dists = np.sqrt(((self.points[indices] - point) ** 2).sum(axis=1))
            for d, i in zip(dists, indices):
                if len(heap) < k:
                    heapq.heappush(heap, (-d, int(i)))
                elif d < -heap[0][0]:
                    heapq.heapreplace(heap, (-d, int(i)))

        def visit(node) -> None:
            if isinstance(node, tuple):  # leaf
                consider(self._leaves[node[1]])
                return
            consider(np.array([node.index]))
            diff = point[node.axis] - node.split
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            # Prune the far side unless the splitting plane is closer than
            # the current k-th best distance.
            if len(heap) < k or abs(diff) < -heap[0][0]:
                visit(far)

        visit(self._root)
        best = sorted(((-d, i) for d, i in heap))
        dists = np.array([d for d, _ in best])
        idxs = np.array([i for _, i in best], dtype=int)
        return dists, idxs

    def query_batch(self, points: np.ndarray, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised convenience wrapper: query many points."""
        points = np.asarray(points, dtype=np.float64)
        dists = np.empty((len(points), k))
        idxs = np.empty((len(points), k), dtype=int)
        for row, p in enumerate(points):
            dists[row], idxs[row] = self.query(p, k=k)
        return dists, idxs
