"""Static concurrency model: locks, guarded regions, escape, lock order.

The serve tier (PRs 4–5) shares mutable state across threads —
``SimilarityServer``, ``MicroBatcher``, ``EmbeddingCache`` and
``HNSWIndex`` all coordinate through hand-placed ``threading.Lock`` /
``RLock`` attributes.  The C-rule family (C001–C006, see
:mod:`repro.analysis.rules.concurrency`) checks that discipline
statically; this module builds the model those rules query:

- **lock discovery** — every ``self._lock = threading.Lock()``-style
  class attribute (through the MRO), module-level lock, and
  function-local lock, each with a stable id and a lock/rlock kind;
- a **guarded-region walk** over every function in a lock-relevant
  module, tracking the set of locks lexically held (``with lock:``
  scopes) at each attribute access, call and thread spawn;
- an **entry-lock fixpoint** for private methods: ``_add_locked``-style
  helpers inherit the intersection of the locks held at every intra-class
  call site, so delegation behind a public locking wrapper is understood;
- **guard inference** — an attribute is guarded by the locks under which
  it is *written* (outside ``__init__``); reads and writes elsewhere are
  then judged against that guard set;
- **thread escape** — classes that own locks, acquire locks, or spawn
  ``threading.Thread`` workers are shared; closures handed to
  ``Thread(target=...)`` have their free-variable writes tracked;
- the **lock-order graph** — static acquisition-order edges from nested
  ``with`` scopes plus interprocedural edges (a call made while holding
  L reaches everything the callee may transitively acquire), with cycle
  and self-deadlock detection.

Everything is a conservative lexical approximation: ``with`` statements
and call edges are what the model sees, manual ``.acquire()`` /
``.release()`` pairs are not tracked (the runtime sanitizer,
:mod:`repro.obs.lockstats`, covers those dynamically).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .dataflow import ClassInfo, FunctionInfo, ModuleInfo, ProjectDataflow

__all__ = [
    "LOCK_CONSTRUCTORS",
    "RLOCK_CONSTRUCTORS",
    "MUTATOR_METHODS",
    "GENERIC_METHOD_NAMES",
    "LOCK_IMPL_MODULES",
    "LockDef",
    "AttrAccess",
    "ClosureWrite",
    "BlockingCall",
    "CallUnderLock",
    "OrderEdge",
    "ThreadSpawn",
    "CheckThenAct",
    "ConcurrencyModel",
    "build_model",
]

#: Call names (last dotted segment) that construct a lock object.
LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "new_lock", "new_rlock", "SanitizedLock", "SanitizedRLock"}
)

#: The reentrant subset of :data:`LOCK_CONSTRUCTORS`.
RLOCK_CONSTRUCTORS = frozenset({"RLock", "new_rlock", "SanitizedRLock"})

#: Method names whose *call* mutates the receiver in place — used to
#: treat ``self.x.append(...)`` as a write to ``x``.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "discard",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
    }
)

#: Method names too generic for the name-based call fallback: mapping
#: ``anything.get(...)`` to a project method named ``get`` would invent
#: lock acquisitions (e.g. ``dict.get`` vs ``EmbeddingCache.get``).
GENERIC_METHOD_NAMES = frozenset(
    {
        "get",
        "set",
        "put",
        "add",
        "pop",
        "append",
        "extend",
        "update",
        "close",
        "clear",
        "join",
        "acquire",
        "release",
        "submit",
        "query",
        "reset",
        "write",
        "read",
        "open",
        "send",
        "next",
        "result",
        "start",
        "run",
        "stop",
        "items",
        "keys",
        "values",
        "copy",
        "flush",
        "record",
    }
)

#: Modules exempt from the guard rules (C001/C002/C005): the lock shim
#: itself mutates its own bookkeeping around raw acquire/release calls by
#: construction, which the lexical model cannot see.
LOCK_IMPL_MODULES = ("obs/lockstats.py",)

#: Call patterns considered blocking for C004 (held-lock regions).
_BLOCKING_NAME_PARTS = ("encode", "forward")

#: Fixpoint iteration cap for the private-method entry-lock inference.
_MAX_ENTRY_ROUNDS = 8


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted source text of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass(frozen=True)
class LockDef:
    """One discovered lock object and where it lives."""

    lock_id: str  #: stable id, ``<module_rel>::<owner>.<name>``
    kind: str  #: ``"lock"`` (non-reentrant) or ``"rlock"``
    module_rel: str
    line: int


@dataclass
class AttrAccess:
    """One ``self.<attr>`` read or write, with the locks held around it."""

    class_key: str
    attr: str
    write: bool
    kind: str  #: ``"assign"`` (binding/subscript store) or ``"mutate"``
    held: Tuple[str, ...]
    fi: FunctionInfo
    node: ast.AST
    in_init: bool


@dataclass
class ClosureWrite:
    """A write to closure state from inside a nested function."""

    fi: FunctionInfo  #: the enclosing (outer) function
    func_name: str  #: the nested function doing the writing
    name: str  #: the free variable written through
    node: ast.AST
    held: Tuple[str, ...]


@dataclass
class BlockingCall:
    """A potentially blocking call made while at least one lock is held."""

    fi: FunctionInfo
    node: ast.Call
    held: Tuple[str, ...]
    desc: str


@dataclass
class CallUnderLock:
    """Any call made under held locks (for interprocedural order edges)."""

    held: Tuple[str, ...]
    callees: Tuple[str, ...]  #: resolved call-graph node ids
    name: Optional[str]  #: syntactic call name, for the fallback map
    module_rel: str
    line: int


@dataclass(frozen=True)
class OrderEdge:
    """One acquisition-order edge: ``src`` held while ``dst`` acquired."""

    src: str
    dst: str
    module_rel: str
    line: int
    via: str  #: ``"nested"`` (lexical) or ``"call"`` (interprocedural)


@dataclass
class ThreadSpawn:
    """One ``threading.Thread(...)`` construction site."""

    fi: FunctionInfo
    node: ast.Call
    has_daemon: bool
    target_kind: Optional[str]  #: "nested" | "method" | "name" | None
    target_name: Optional[str]
    assigned_attr: Optional[str]  #: ``self.<attr>`` the thread is stored to


@dataclass
class CheckThenAct:
    """An ``if self.x ...: ... self.x ...`` candidate outside the guard."""

    class_key: str
    attr: str
    node: ast.If
    held: Tuple[str, ...]
    fi: FunctionInfo


@dataclass
class _Facts:
    """Accumulators for one fixpoint round of the guarded-region walk."""

    accesses: List[AttrAccess] = field(default_factory=list)
    closure_writes: List[ClosureWrite] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    spawns: List[ThreadSpawn] = field(default_factory=list)
    checks: List[CheckThenAct] = field(default_factory=list)
    nested_edges: List[OrderEdge] = field(default_factory=list)
    self_deadlocks: List[OrderEdge] = field(default_factory=list)
    calls_under_lock: List[CallUnderLock] = field(default_factory=list)
    direct_acquires: Dict[str, Set[str]] = field(default_factory=dict)
    #: private-method node id -> held sets observed at intra-class call sites
    callsites: Dict[str, List[FrozenSet[str]]] = field(default_factory=dict)
    #: outer function node id -> nested function names used as Thread targets
    thread_closures: Dict[str, Set[str]] = field(default_factory=dict)
    #: class keys that spawn threads targeting their own methods
    spawning_classes: Set[str] = field(default_factory=set)


class ConcurrencyModel:
    """Whole-project lock model the C-rules query.

    Build via :func:`build_model` (cached per :class:`ProjectDataflow`);
    all attributes are read-only facts after construction.
    """

    def __init__(self, flow: ProjectDataflow) -> None:
        self.flow = flow
        #: every discovered lock, by id
        self.locks: Dict[str, LockDef] = {}
        #: class key -> {attr name -> LockDef}, merged through the MRO
        self.class_locks: Dict[str, Dict[str, LockDef]] = {}
        #: module rel -> {name -> LockDef} for module-level locks
        self.module_locks: Dict[str, Dict[str, LockDef]] = {}
        #: module rel -> {imported local name -> LockDef}
        self.imported_locks: Dict[str, Dict[str, LockDef]] = {}
        self.accesses: List[AttrAccess] = []
        self.closure_writes: List[ClosureWrite] = []
        self.blocking: List[BlockingCall] = []
        self.spawns: List[ThreadSpawn] = []
        self.checks: List[CheckThenAct] = []
        #: deduplicated acquisition-order edges (first site wins)
        self.order_edges: List[OrderEdge] = []
        self.self_deadlocks: List[OrderEdge] = []
        #: lock-id cycles in the acquisition-order graph (each a node list)
        self.cycles: List[List[str]] = []
        #: (class key, attr) -> lock ids inferred to guard the attribute
        self.guards: Dict[Tuple[str, str], Set[str]] = {}
        #: classes considered shared across threads
        self.shared_classes: Set[str] = set()
        #: outer function node id -> nested thread-target closure names
        self.thread_closures: Dict[str, Set[str]] = {}
        #: function node id -> lock ids it may transitively acquire
        self.acquires: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        self._discover_locks()
        relevant = self._relevant_modules()
        facts = self._walk_fixpoint(relevant)
        self._finalise(facts)

    def _discover_locks(self) -> None:
        own_class_locks: Dict[str, Dict[str, LockDef]] = {}
        for rel, info in self.flow.modules.items():
            # Module-level locks: NAME = threading.Lock() at top level.
            for node in info.ctx.tree.body:
                if isinstance(node, ast.Assign):
                    kind = self._lock_kind(node.value)
                    if kind is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            ld = LockDef(
                                f"{rel}::{target.id}", kind, rel, node.lineno
                            )
                            self.module_locks.setdefault(rel, {})[target.id] = ld
                            self.locks[ld.lock_id] = ld
            # Class-attribute locks: self.X = threading.Lock() in any method.
            for cinfo in info.classes.values():
                for mnode in cinfo.methods.values():
                    for node in ast.walk(mnode):
                        if not isinstance(node, ast.Assign):
                            continue
                        kind = self._lock_kind(node.value)
                        if kind is None:
                            continue
                        for target in node.targets:
                            attr = _is_self_attr(target)
                            if attr is None:
                                continue
                            ld = LockDef(
                                f"{rel}::{cinfo.name}.{attr}", kind, rel, node.lineno
                            )
                            own_class_locks.setdefault(cinfo.key, {})[attr] = ld
                            self.locks[ld.lock_id] = ld
        # Merge through the MRO so subclasses see inherited locks.
        for info in self.flow.modules.values():
            for cinfo in info.classes.values():
                merged: Dict[str, LockDef] = {}
                for klass in reversed(self.flow.mro(cinfo)):
                    merged.update(own_class_locks.get(klass.key, {}))
                if merged:
                    self.class_locks[cinfo.key] = merged
        # Imported module-level locks: from .metrics import _UPDATE_LOCK.
        for rel, info in self.flow.modules.items():
            for local, target in info.imports.items():
                mod_dotted, _, name = target.rpartition(".")
                if not mod_dotted:
                    continue
                src = self.flow.by_modname.get(mod_dotted)
                if src is None:
                    continue
                ld = self.module_locks.get(src.ctx.rel, {}).get(name)
                if ld is not None:
                    self.imported_locks.setdefault(rel, {})[local] = ld

    @staticmethod
    def _lock_kind(value: ast.AST) -> Optional[str]:
        """``"lock"``/``"rlock"`` when ``value`` constructs one, else None."""
        if not isinstance(value, ast.Call):
            return None
        dotted = _dotted_name(value.func)
        if dotted is None:
            return None
        last = dotted.rsplit(".", 1)[-1]
        if last not in LOCK_CONSTRUCTORS:
            return None
        return "rlock" if last in RLOCK_CONSTRUCTORS else "lock"

    def _relevant_modules(self) -> Set[str]:
        """Modules worth walking: they define, import or could hold locks."""
        relevant: Set[str] = set(self.module_locks) | set(self.imported_locks)
        for key in self.class_locks:
            relevant.add(key.split("::", 1)[0])
        for rel, info in self.flow.modules.items():
            if "Thread" in info.ctx.source:
                relevant.add(rel)
        return {rel for rel in relevant if rel in self.flow.modules}

    def _walk_fixpoint(self, relevant: Set[str]) -> _Facts:
        """Run the guarded-region walk to an entry-lock fixpoint."""
        targets = [
            fi for fi in self.flow.functions.values() if fi.module_rel in relevant
        ]
        entry: Dict[str, FrozenSet[str]] = {}
        facts = _Facts()
        for _ in range(_MAX_ENTRY_ROUNDS):
            facts = _Facts()
            for fi in targets:
                _Walker(self, fi, entry.get(fi.node_id, frozenset()), facts).walk()
            new_entry: Dict[str, FrozenSet[str]] = {}
            for node_id, held_sets in facts.callsites.items():
                name = node_id.rsplit(".", 1)[-1]
                if not name.startswith("_") or name.startswith("__"):
                    continue  # public methods are API-callable bare
                inter: FrozenSet[str] = frozenset.intersection(*held_sets)
                if inter:
                    new_entry[node_id] = inter
            if new_entry == entry:
                break
            entry = new_entry
        return facts

    # ------------------------------------------------------------------
    # Post-walk derivation
    # ------------------------------------------------------------------
    def _finalise(self, facts: _Facts) -> None:
        self.accesses = facts.accesses
        self.closure_writes = facts.closure_writes
        self.blocking = facts.blocking
        self.spawns = facts.spawns
        self.checks = facts.checks
        self.thread_closures = facts.thread_closures

        for acc in self.accesses:
            if acc.write and acc.held and not acc.in_init:
                self.guards.setdefault((acc.class_key, acc.attr), set()).update(
                    acc.held
                )

        self.shared_classes = set(self.class_locks) | facts.spawning_classes
        for node_id, acquired in facts.direct_acquires.items():
            if acquired and "." in self.flow.functions[node_id].qualname:
                fi = self.flow.functions[node_id]
                cls = fi.qualname.split(".")[0]
                self.shared_classes.add(f"{fi.module_rel}::{cls}")

        self._build_order_graph(facts)

    def _build_order_graph(self, facts: _Facts) -> None:
        self.acquires = self._transitive_acquires(facts.direct_acquires)
        fallback = self._fallback_map()

        edges: Dict[Tuple[str, str], OrderEdge] = {}
        for edge in facts.nested_edges:
            edges.setdefault((edge.src, edge.dst), edge)
        self.self_deadlocks = list(facts.self_deadlocks)

        for call in facts.calls_under_lock:
            targets = set(call.callees)
            if call.name is not None and call.name in fallback:
                targets.add(fallback[call.name])
            for target in targets:
                for dst in self.acquires.get(target, ()):
                    for src in call.held:
                        if src == dst:
                            if self.locks[src].kind == "lock":
                                self.self_deadlocks.append(
                                    OrderEdge(
                                        src, dst, call.module_rel, call.line, "call"
                                    )
                                )
                            continue
                        edges.setdefault(
                            (src, dst),
                            OrderEdge(src, dst, call.module_rel, call.line, "call"),
                        )
        self.order_edges = sorted(
            edges.values(), key=lambda e: (e.module_rel, e.line, e.src, e.dst)
        )
        self.cycles = self._find_cycles()

    def _transitive_acquires(
        self, direct: Dict[str, Set[str]]
    ) -> Dict[str, Set[str]]:
        """Lock ids each function may acquire, propagated over the call graph.

        Uses the resolved call graph plus a name-based fallback scan for
        attribute calls the resolver cannot type (``registry.counter(...)``),
        so acquisitions do not vanish behind an untyped receiver.
        """
        acquires: Dict[str, Set[str]] = {
            nid: set(locks) for nid, locks in direct.items()
        }
        eff_edges: Dict[str, Set[str]] = {
            nid: set(self.flow.edges.get(nid, ())) for nid in self.flow.functions
        }
        for _ in range(2):
            # Round 1 settles resolved edges; the fallback map built from
            # that result then catches untyped attribute calls in round 2.
            changed = True
            while changed:
                changed = False
                for nid, callees in eff_edges.items():
                    mine = acquires.setdefault(nid, set())
                    before = len(mine)
                    for callee in callees:
                        mine |= acquires.get(callee, set())
                    if len(mine) != before:
                        changed = True
            fallback = self._fallback_map(acquires)
            for nid, fi in self.flow.functions.items():
                for node in ast.walk(fi.node):
                    if isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute
                    ):
                        target = fallback.get(node.func.attr)
                        if target is not None and target != nid:
                            eff_edges.setdefault(nid, set()).add(target)
        return {nid: locks for nid, locks in acquires.items() if locks}

    def _fallback_map(
        self, acquires: Optional[Dict[str, Set[str]]] = None
    ) -> Dict[str, str]:
        """Unambiguous method name -> acquiring function, for untyped calls.

        Only names that (a) are not generic (:data:`GENERIC_METHOD_NAMES`)
        and (b) name exactly one lock-acquiring project function qualify —
        precision over recall, so ``dict.get`` never becomes a lock edge.
        """
        acquires = acquires if acquires is not None else self.acquires
        candidates: Dict[str, List[str]] = {}
        for nid, locks in acquires.items():
            if not locks:
                continue
            name = nid.rsplit(".", 1)[-1].rsplit("::", 1)[-1]
            if name in GENERIC_METHOD_NAMES or name.startswith("__"):
                continue
            candidates.setdefault(name, []).append(nid)
        return {
            name: nids[0] for name, nids in candidates.items() if len(nids) == 1
        }

    def _find_cycles(self) -> List[List[str]]:
        """Strongly connected components of size > 1 in the order graph."""
        graph: Dict[str, Set[str]] = {}
        for edge in self.order_edges:
            graph.setdefault(edge.src, set()).add(edge.dst)
            graph.setdefault(edge.dst, set())
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(graph.get(v, ())):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                component: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

        for v in sorted(graph):
            if v not in index:
                strongconnect(v)
        return sccs

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def edge_site(self, src: str, dst: str) -> Optional[OrderEdge]:
        """The recorded acquisition site for an order edge, if any."""
        for edge in self.order_edges:
            if edge.src == src and edge.dst == dst:
                return edge
        return None

    def guard_of(self, class_key: str, attr: str) -> Set[str]:
        """Inferred guard lock ids for ``class_key.attr`` (empty when none)."""
        return self.guards.get((class_key, attr), set())


class _Walker:
    """Guarded-region walk of one function for one fixpoint round."""

    def __init__(
        self,
        model: ConcurrencyModel,
        fi: FunctionInfo,
        entry_locks: FrozenSet[str],
        facts: _Facts,
    ) -> None:
        self.m = model
        self.fi = fi
        self.facts = facts
        self.module: ModuleInfo = model.flow.modules[fi.module_rel]
        clsname = fi.qualname.split(".")[0] if "." in fi.qualname else None
        self.cinfo: Optional[ClassInfo] = (
            self.module.classes.get(clsname) if clsname else None
        )
        self.class_key = self.cinfo.key if self.cinfo else None
        self.lockmap = model.class_locks.get(self.class_key, {}) if self.class_key else {}
        self.in_init = fi.qualname.endswith(".__init__")
        self.entry = tuple(sorted(entry_locks))
        self.consumed: Set[int] = set()
        #: stack of (nested function name, local-name set, nonlocal-name set)
        self.nested: List[Tuple[str, Set[str], Set[str]]] = []
        self.local_locks: Dict[str, LockDef] = {}
        self.attr_types = model.flow.attr_types(self.cinfo) if self.cinfo else {}
        self.local_types: Dict[str, ClassInfo] = {}
        self._pending_assign_attr: Optional[str] = None
        self._prescan()

    def _prescan(self) -> None:
        rel = self.fi.module_rel
        for node in ast.walk(self.fi.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            kind = self.m._lock_kind(node.value)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if kind is not None:
                    ld = LockDef(
                        f"{rel}::{self.fi.qualname}.{target.id}",
                        kind,
                        rel,
                        node.lineno,
                    )
                    self.local_locks[target.id] = ld
                    self.m.locks[ld.lock_id] = ld
                else:
                    classes = self.m.flow._call_result_classes(
                        self.module, node.value
                    )
                    if classes:
                        self.local_types[target.id] = classes[0]

    # ------------------------------------------------------------------
    def walk(self) -> None:
        """Walk the function body with the entry-lock set held."""
        self.visit_body(self.fi.node.body, self.entry)

    def resolve_lock(self, expr: ast.AST) -> Optional[LockDef]:
        """The LockDef a ``with``-item context expression denotes, if any."""
        attr = _is_self_attr(expr)
        if attr is not None:
            return self.lockmap.get(attr)
        if isinstance(expr, ast.Name):
            rel = self.fi.module_rel
            return (
                self.local_locks.get(expr.id)
                or self.m.module_locks.get(rel, {}).get(expr.id)
                or self.m.imported_locks.get(rel, {}).get(expr.id)
            )
        return None

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def visit_body(self, stmts, held: Tuple[str, ...]) -> None:
        """Visit a statement list under the given held-lock tuple."""
        for stmt in stmts:
            self.visit_stmt(stmt, held)

    def visit_stmt(self, node: ast.stmt, held: Tuple[str, ...]) -> None:
        """Dispatch one statement, tracking ``with``-scoped lock regions."""
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node, held)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_nested(node, held)
        elif isinstance(node, ast.ClassDef):
            self.visit_body(node.body, held)
        elif isinstance(node, ast.Assign):
            self._pending_assign_attr = None
            for target in node.targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    self._pending_assign_attr = attr
            self.visit_expr(node.value, held)
            self._pending_assign_attr = None
            for target in node.targets:
                self.visit_target(target, held)
        elif isinstance(node, ast.AugAssign):
            self.visit_expr(node.value, held)
            self.visit_target(node.target, held)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.visit_expr(node.value, held)
                self.visit_target(node.target, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self.visit_target(target, held)
        elif isinstance(node, ast.If):
            self._check_then_act(node, held)
            self.visit_expr(node.test, held)
            self.visit_body(node.body, held)
            self.visit_body(node.orelse, held)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit_expr(node.iter, held)
            self.visit_target(node.target, held)
            self.visit_body(node.body, held)
            self.visit_body(node.orelse, held)
        elif isinstance(node, ast.While):
            self.visit_expr(node.test, held)
            self.visit_body(node.body, held)
            self.visit_body(node.orelse, held)
        elif isinstance(node, ast.Try):
            self.visit_body(node.body, held)
            for handler in node.handlers:
                if handler.type is not None:
                    self.visit_expr(handler.type, held)
                self.visit_body(handler.body, held)
            self.visit_body(node.orelse, held)
            self.visit_body(node.finalbody, held)
        elif isinstance(node, ast.Nonlocal):
            if self.nested:
                self.nested[-1][2].update(node.names)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, held)

    def _visit_with(self, node, held: Tuple[str, ...]) -> None:
        acquired: List[str] = []
        for item in node.items:
            ld = self.resolve_lock(item.context_expr)
            if ld is None:
                self.visit_expr(item.context_expr, held)
                continue
            self.facts.direct_acquires.setdefault(self.fi.node_id, set()).add(
                ld.lock_id
            )
            current = held + tuple(acquired)
            if ld.lock_id in current:
                if ld.kind == "lock":
                    self.facts.self_deadlocks.append(
                        OrderEdge(
                            ld.lock_id,
                            ld.lock_id,
                            self.fi.module_rel,
                            node.lineno,
                            "nested",
                        )
                    )
                continue  # reentrant re-acquire: held set unchanged
            for src in current:
                self.facts.nested_edges.append(
                    OrderEdge(
                        src, ld.lock_id, self.fi.module_rel, node.lineno, "nested"
                    )
                )
            acquired.append(ld.lock_id)
        self.visit_body(node.body, held + tuple(acquired))

    def _visit_nested(self, node, held: Tuple[str, ...]) -> None:
        locals_: Set[str] = {a.arg for a in node.args.args}
        locals_.update(a.arg for a in node.args.kwonlyargs)
        if node.args.vararg:
            locals_.add(node.args.vararg.arg)
        if node.args.kwarg:
            locals_.add(node.args.kwarg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                locals_.add(sub.id)
        # A nested function runs later, possibly on another thread: locks
        # held at the definition site are NOT held at execution time.
        self.nested.append((node.name, locals_, set()))
        self.visit_body(node.body, ())
        self.nested.pop()

    def _check_then_act(self, node: ast.If, held: Tuple[str, ...]) -> None:
        if self.cinfo is None:
            return
        test_attrs = {
            sub.attr
            for sub in ast.walk(node.test)
            if _is_self_attr(sub) is not None and sub.attr not in self.lockmap
        }
        if not test_attrs:
            return
        body_attrs = set()
        for stmt in node.body + node.orelse:
            for sub in ast.walk(stmt):
                if _is_self_attr(sub) is not None:
                    body_attrs.add(sub.attr)
        for attr in sorted(test_attrs & body_attrs):
            self.facts.checks.append(
                CheckThenAct(self.class_key, attr, node, held, self.fi)
            )

    # ------------------------------------------------------------------
    # Expressions and targets
    # ------------------------------------------------------------------
    def visit_target(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        """Visit an assignment/deletion target, recording writes."""
        attr = _is_self_attr(node)
        if attr is not None:
            self.record_access(attr, True, "assign", node, held)
            return
        if isinstance(node, ast.Subscript):
            base_attr = _is_self_attr(node.value)
            if base_attr is not None:
                self.record_access(base_attr, True, "assign", node.value, held)
                self.consumed.add(id(node.value))
            elif isinstance(node.value, ast.Name):
                self.record_free_write(node.value.id, node, held)
            else:
                self.visit_expr(node.value, held)
            self.visit_expr(node.slice, held)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.visit_target(elt, held)
            return
        if isinstance(node, ast.Starred):
            self.visit_target(node.value, held)
            return
        if isinstance(node, ast.Name):
            if self.nested and node.id in self.nested[-1][2]:
                self.record_free_write(node.id, node, held)
            return
        if isinstance(node, ast.expr):
            self.visit_expr(node, held)

    def visit_expr(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        """Visit one expression, recording reads, calls and spawns."""
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
            return
        if isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if (
                attr is not None
                and isinstance(node.ctx, ast.Load)
                and id(node) not in self.consumed
            ):
                self.record_access(attr, False, "read", node, held)
            self.visit_expr(node.value, held)
            return
        if isinstance(node, ast.Lambda):
            self.visit_expr(node.body, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child, held)
            elif isinstance(child, ast.comprehension):
                self.visit_expr(child.iter, held)
                for cond in child.ifs:
                    self.visit_expr(cond, held)

    def _visit_call(self, node: ast.Call, held: Tuple[str, ...]) -> None:
        func = node.func
        # Mutating method call: self.x.append(...) writes x.
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            recv_attr = _is_self_attr(func.value)
            if recv_attr is not None:
                self.record_access(recv_attr, True, "mutate", func.value, held)
                self.consumed.add(id(func.value))
            elif isinstance(func.value, ast.Name) and self.nested:
                self.record_free_write(func.value.id, node, held)
        # Thread construction.
        dotted = _dotted_name(func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "Thread":
            self._record_spawn(node)
        # Blocking call under a held lock.
        if held:
            desc = self._blocking_desc(node, dotted)
            if desc is not None:
                self.facts.blocking.append(
                    BlockingCall(self.fi, node, held, desc)
                )
        # Intra-class call sites (entry-lock inference) + order edges.
        attr = _is_self_attr(func)
        if attr is not None and self.cinfo is not None:
            mfi = self.m.flow.find_method(self.cinfo, attr)
            if mfi is not None:
                self.facts.callsites.setdefault(mfi.node_id, []).append(
                    frozenset(held)
                )
        if held:
            callees = self.m.flow._call_edges(
                node, self.module, self.cinfo, self.attr_types, self.local_types
            )
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            self.facts.calls_under_lock.append(
                CallUnderLock(
                    held,
                    tuple(sorted(callees)),
                    name,
                    self.fi.module_rel,
                    node.lineno,
                )
            )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child, held)
            elif isinstance(child, ast.keyword):
                self.visit_expr(child.value, held)

    def _record_spawn(self, node: ast.Call) -> None:
        has_daemon = any(kw.arg == "daemon" for kw in node.keywords)
        target_kind = target_name = None
        for kw in node.keywords:
            if kw.arg != "target":
                continue
            attr = _is_self_attr(kw.value)
            if attr is not None:
                target_kind, target_name = "method", attr
                if self.class_key is not None:
                    self.facts.spawning_classes.add(self.class_key)
            elif isinstance(kw.value, ast.Name):
                nested_names = {frame[0] for frame in self.nested}
                outer_nested = self._nested_defs()
                if kw.value.id in outer_nested or kw.value.id in nested_names:
                    target_kind, target_name = "nested", kw.value.id
                    self.facts.thread_closures.setdefault(
                        self.fi.node_id, set()
                    ).add(kw.value.id)
                else:
                    target_kind, target_name = "name", kw.value.id
        self.facts.spawns.append(
            ThreadSpawn(
                self.fi, node, has_daemon, target_kind, target_name,
                self._pending_assign_attr,
            )
        )

    def _nested_defs(self) -> Set[str]:
        return {
            sub.name
            for sub in ast.walk(self.fi.node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not self.fi.node
        }

    @staticmethod
    def _blocking_desc(node: ast.Call, dotted: Optional[str]) -> Optional[str]:
        if dotted is not None:
            last = dotted.rsplit(".", 1)[-1]
            if dotted in ("time.sleep", "sleep"):
                return f"{dotted}(...)"
            if any(part in last for part in _BLOCKING_NAME_PARTS):
                return f"{dotted}(...) (model forward)"
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        recv = _dotted_name(func.value) or ""
        if func.attr == "result":
            return f"{recv}.result() (future wait)"
        if func.attr == "join" and not node.args:
            return f"{recv}.join() (thread wait)"
        if func.attr == "wait":
            return f"{recv}.wait()"
        if func.attr == "get" and "queue" in recv.lower():
            return f"{recv}.get() (queue wait)"
        return None

    # ------------------------------------------------------------------
    def record_access(
        self,
        attr: str,
        write: bool,
        kind: str,
        node: ast.AST,
        held: Tuple[str, ...],
    ) -> None:
        """Record one ``self.<attr>`` access (lock attributes excluded)."""
        if self.cinfo is None or attr in self.lockmap:
            return
        self.facts.accesses.append(
            AttrAccess(
                class_key=self.class_key,
                attr=attr,
                write=write,
                kind=kind if write else "read",
                held=held,
                fi=self.fi,
                node=node,
                in_init=self.in_init and not self.nested,
            )
        )

    def record_free_write(
        self, name: str, node: ast.AST, held: Tuple[str, ...]
    ) -> None:
        """Record a write through a free variable inside a nested function."""
        if not self.nested:
            return
        func_name, locals_, nonlocals = self.nested[-1]
        if name in locals_ and name not in nonlocals:
            return
        self.facts.closure_writes.append(
            ClosureWrite(self.fi, func_name, name, node, held)
        )


def build_model(flow: ProjectDataflow) -> ConcurrencyModel:
    """The (cached) concurrency model for a built dataflow index."""
    model = getattr(flow, "_concurrency_model", None)
    if model is None:
        model = ConcurrencyModel(flow)
        model._build()
        flow._concurrency_model = model
    return model
