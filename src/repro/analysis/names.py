"""Qualified-name resolution helpers shared by the lint rules.

Rules need to recognise calls like ``np.random.rand`` regardless of how
numpy was imported (``import numpy as np``, ``from numpy import random``,
``from numpy.random import default_rng``...).  :func:`import_aliases`
builds the local-name → dotted-path map for a module and
:func:`qualified_name` normalises an expression through it.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["import_aliases", "dotted_name", "qualified_name"]


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to fully qualified dotted paths for every import."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: leave package-local names alone
                continue
            module = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{module}.{item.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """Literal dotted form of a Name/Attribute chain, or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted name of an expression, through import aliases.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; ``default_rng`` imported from ``numpy.random``
    resolves to ``numpy.random.default_rng``.  Returns None for anything
    that is not a plain Name/Attribute chain.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head
