"""Symbolic shape checker for layer wiring (rule S001).

Mis-wired layer dimensions — a ``Linear`` whose output does not match the
LSTM input, an MLP head sized for the wrong hidden dimension — usually
survive unit tests because tests pick configs where the wrong numbers
coincide.  This module catches them *statically*: it abstractly interprets
module ``__init__`` bodies to learn each layer's symbolic in/out feature
dimension (polynomials over ``config.*`` fields), then walks the forward
methods tracking the symbolic last-axis dimension of every local, checking
producer/consumer dimensions at each layer call — without running the
model.

Boolean config flags that gate wiring (e.g. ``config.matching``) are
branch-split: every combination is checked as its own scenario, so the
TMN-NM ablation path is verified alongside the full model.

Unknown constructs degrade to "unknown dimension" and suppress checking
rather than guessing, so the checker is conservative: it only reports
mismatches between two *fully resolved* symbolic dimensions.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .violations import Violation

__all__ = ["SymDim", "LayerSpec", "check_module_wiring"]

# ----------------------------------------------------------------------
# Symbolic dimensions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SymDim:
    """A linear/multilinear polynomial over named dimension symbols.

    Represented canonically as monomial → integer coefficient, where a
    monomial is a sorted tuple of symbol names and ``()`` is the constant
    term.  Two dimensions are equal iff their canonical forms match, which
    is what the wiring check compares.
    """

    terms: Tuple[Tuple[Tuple[str, ...], int], ...]

    @staticmethod
    def const(value: int) -> "SymDim":
        """The constant dimension ``value``."""
        return SymDim._from_dict({(): int(value)})

    @staticmethod
    def sym(name: str) -> "SymDim":
        """An atomic named dimension such as ``config.hidden_dim``."""
        return SymDim._from_dict({(name,): 1})

    @staticmethod
    def _from_dict(d: Dict[Tuple[str, ...], int]) -> "SymDim":
        cleaned = {m: c for m, c in d.items() if c != 0}
        return SymDim(tuple(sorted(cleaned.items())))

    def _dict(self) -> Dict[Tuple[str, ...], int]:
        return dict(self.terms)

    def __add__(self, other: "SymDim") -> "SymDim":
        out = self._dict()
        for mono, coeff in other.terms:
            out[mono] = out.get(mono, 0) + coeff
        return SymDim._from_dict(out)

    def __sub__(self, other: "SymDim") -> "SymDim":
        out = self._dict()
        for mono, coeff in other.terms:
            out[mono] = out.get(mono, 0) - coeff
        return SymDim._from_dict(out)

    def __mul__(self, other: "SymDim") -> "SymDim":
        out: Dict[Tuple[str, ...], int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                mono = tuple(sorted(m1 + m2))
                out[mono] = out.get(mono, 0) + c1 * c2
        return SymDim._from_dict(out)

    def floordiv(self, divisor: int) -> Optional["SymDim"]:
        """Exact division by an integer; None when any coefficient resists."""
        if divisor == 0:
            return None
        if any(coeff % divisor for _, coeff in self.terms):
            return None
        return SymDim._from_dict({m: c // divisor for m, c in self.terms})

    def as_const(self) -> Optional[int]:
        """The integer value when this dimension is a pure constant."""
        if not self.terms:
            return 0
        if len(self.terms) == 1 and self.terms[0][0] == ():
            return self.terms[0][1]
        return None

    def render(self) -> str:
        """Readable form, e.g. ``2*config.embed_dim + 1``."""
        if not self.terms:
            return "0"
        parts = []
        for mono, coeff in self.terms:
            if not mono:
                parts.append(str(coeff))
            else:
                stem = "*".join(mono)
                parts.append(stem if coeff == 1 else f"{coeff}*{stem}")
        return " + ".join(parts)


#: A tracked value: a symbolic last-axis dimension, a tuple of values
#: (for multi-output calls), or None meaning "unknown".
Value = Union[SymDim, Tuple, None]


# ----------------------------------------------------------------------
# Layer catalogue
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LayerSpec:
    """What the checker knows about one constructed layer attribute."""

    kind: str  #: linear | rnn | cell_pair | cell | mlp | attention | activation
    in_dim: Optional[SymDim]
    out_dim: Optional[SymDim]
    lineno: int


def _constructor_spec(name: str, args: List[Value], lineno: int) -> Optional[LayerSpec]:
    """LayerSpec for a recognised constructor call, else None."""

    def arg(i: int) -> Optional[SymDim]:
        if i < len(args) and isinstance(args[i], SymDim):
            return args[i]
        return None

    if name == "Linear":
        return LayerSpec("linear", arg(0), arg(1), lineno)
    if name in ("LSTM", "GRU"):
        return LayerSpec("rnn", arg(0), arg(1), lineno)
    if name == "make_rnn":  # make_rnn(backbone, input_size, hidden_size, rng)
        return LayerSpec("rnn", arg(1), arg(2), lineno)
    if name == "LSTMCell":
        return LayerSpec("cell_pair", arg(0), arg(1), lineno)
    if name == "GRUCell":
        return LayerSpec("cell", arg(0), arg(1), lineno)
    if name == "SelfAttention":
        return LayerSpec("attention", arg(0), arg(0), lineno)
    if name in ("Activation", "LeakyReLU", "ReLU", "Sigmoid", "Tanh"):
        return LayerSpec("activation", None, None, lineno)
    return None


def _mlp_spec(node: ast.Call, interp: "_Interpreter", env, lineno: int) -> Optional[LayerSpec]:
    if not node.args or not isinstance(node.args[0], (ast.List, ast.Tuple)):
        return None
    sizes = [interp.eval_dim(e, env) for e in node.args[0].elts]
    if not sizes:
        return None
    first = sizes[0] if isinstance(sizes[0], SymDim) else None
    last = sizes[-1] if isinstance(sizes[-1], SymDim) else None
    return LayerSpec("mlp", first, last, lineno)


# ----------------------------------------------------------------------
# Abstract interpretation
# ----------------------------------------------------------------------


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _config_flag(node: ast.AST) -> Optional[str]:
    """The flag name when ``node`` is ``self.config.<name>`` (or ``config.<name>``)."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Attribute) and value.attr == "config" and isinstance(value.value, ast.Name):
        return node.attr
    if isinstance(value, ast.Name) and value.id == "config":
        return node.attr
    return None


@dataclass
class _Scenario:
    """One assignment of truth values to the wiring-gating config flags."""

    flags: Dict[str, bool] = field(default_factory=dict)

    def describe(self) -> str:
        if not self.flags:
            return ""
        body = ", ".join(f"config.{k}={v}" for k, v in sorted(self.flags.items()))
        return f" [scenario: {body}]"


class _Interpreter:
    """Walks one class hierarchy under one scenario, collecting violations.

    ``chain`` is the class's approximate MRO, subclass first, each entry a
    ``(classdef, path)`` pair; methods are looked up subclass-first, so an
    overriding ``lstm_input_dim`` in a baseline is seen by the base-class
    ``__init__`` it parameterises.  ``resolver`` (optional) maps a free
    helper-function name to its ``(FunctionDef, path)`` so dimensions
    survive interprocedural calls into other modules.
    """

    _MAX_DEPTH = 4

    def __init__(
        self,
        chain: Sequence[Tuple[ast.ClassDef, str]],
        scenario: _Scenario,
        resolver=None,
    ):
        self.chain = list(chain)
        self.classdef = self.chain[0][0]
        self.scenario = scenario
        self.resolver = resolver
        self.attrs: Dict[str, Union[LayerSpec, Value]] = {}
        self.violations: List[Violation] = []
        # Subclass-first merge: the first definition of a name wins.
        self._methods: Dict[str, Tuple[ast.FunctionDef, str]] = {}
        for classdef, path in self.chain:
            for node in classdef.body:
                if isinstance(node, ast.FunctionDef) and node.name not in self._methods:
                    self._methods[node.name] = (node, path)
        self._return_cache: Dict[str, Value] = {}
        self._analyzing: List[str] = []
        # Violations cite the file defining the method being interpreted.
        self._path_stack: List[str] = [self.chain[0][1]]
        # Local flag aliases: names assigned from self.config.<flag>.
        self._flag_aliases: Dict[str, str] = {}

    @property
    def path(self) -> str:
        return self._path_stack[-1]

    # -- truth of boolean config tests ---------------------------------
    def _truth(self, test: ast.AST) -> Optional[bool]:
        flag = _config_flag(test)
        if flag is None and isinstance(test, ast.Name):
            flag = self._flag_aliases.get(test.id)
        if flag is not None and flag in self.scenario.flags:
            return self.scenario.flags[flag]
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._truth(test.operand)
            return None if inner is None else not inner
        return None

    # -- dimension evaluation (integer-valued expressions) --------------
    def eval_dim(self, node: ast.AST, env: Optional[Dict[str, Value]] = None) -> Optional[SymDim]:
        """Symbolic integer value of an expression, or None."""
        env = env if env is not None else {}
        if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
            return SymDim.const(node.value)
        if isinstance(node, ast.Name):
            value = env.get(node.id)
            return value if isinstance(value, SymDim) else None
        if isinstance(node, ast.Attribute):
            flag = _config_flag(node)
            if flag is not None:
                return SymDim.sym(f"config.{flag}")
            # self.<attr> holding a plain symbolic int (e.g. self.output_dim)
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                value = self.attrs.get(node.attr)
                return value if isinstance(value, SymDim) else None
            return None
        if isinstance(node, ast.BinOp):
            left = self.eval_dim(node.left, env)
            right = self.eval_dim(node.right, env)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                divisor = right.as_const()
                return left.floordiv(divisor) if divisor is not None else None
            return None
        if isinstance(node, ast.IfExp):
            truth = self._truth(node.test)
            if truth is None:
                return None
            return self.eval_dim(node.body if truth else node.orelse, env)
        if isinstance(node, ast.Call):
            # self.<method>() used as a size expression, e.g. the base
            # __init__ sizing the LSTM with the overridable lstm_input_dim().
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in self._methods
            ):
                value = self.run_method(func.attr)
                return value if isinstance(value, SymDim) else None
        return None

    # -- __init__ interpretation ----------------------------------------
    def run_init(self) -> None:
        """Interpret the ``__init__`` chain to learn layer specs and attrs."""
        self._run_init_from(0)

    def _run_init_from(self, start: int) -> None:
        """Run the first ``__init__`` at or after ``start`` in the MRO.

        ``super().__init__(...)`` inside it continues the chain from the
        next index, so base-class layer construction (which may call
        subclass-overridden sizing methods) lands in the shared ``attrs``.
        """
        for idx in range(start, len(self.chain)):
            classdef, path = self.chain[idx]
            init = next(
                (
                    n
                    for n in classdef.body
                    if isinstance(n, ast.FunctionDef) and n.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            env: Dict[str, Value] = {}
            self._path_stack.append(path)
            try:
                self._exec_block(init.body, env, in_init=True, init_index=idx)
            finally:
                self._path_stack.pop()
            return

    @staticmethod
    def _is_super_init(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        )

    def _layer_from_call(self, node: ast.Call, env: Dict[str, Value]) -> Optional[LayerSpec]:
        name = _call_name(node.func)
        if name is None:
            return None
        if name == "MLP":
            return _mlp_spec(node, self, env, node.lineno)
        args: List[Value] = [self.eval_dim(a, env) for a in node.args]
        return _constructor_spec(name, args, node.lineno)

    def _exec_block(
        self,
        body: Sequence[ast.stmt],
        env: Dict[str, Value],
        in_init: bool,
        init_index: Optional[int] = None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self._exec_assign(stmt, env, in_init)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                fake = ast.Assign(targets=[stmt.target], value=stmt.value)
                ast.copy_location(fake, stmt)
                self._exec_assign(fake, env, in_init)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = None
            elif isinstance(stmt, ast.If):
                truth = self._truth(stmt.test)
                if truth is True:
                    self._exec_block(stmt.body, env, in_init, init_index)
                elif truth is False:
                    self._exec_block(stmt.orelse, env, in_init, init_index)
                else:
                    # Unknown branch: run both on copies, keep agreements.
                    env_a = dict(env)
                    env_b = dict(env)
                    self._exec_block(stmt.body, env_a, in_init, init_index)
                    self._exec_block(stmt.orelse, env_b, in_init, init_index)
                    for key in set(env_a) | set(env_b):
                        val_a, val_b = env_a.get(key), env_b.get(key)
                        env[key] = val_a if val_a == val_b else None
            elif isinstance(stmt, (ast.Expr, ast.Return)):
                if isinstance(stmt, ast.Expr):
                    if (
                        in_init
                        and init_index is not None
                        and self._is_super_init(stmt.value)
                    ):
                        self._run_init_from(init_index + 1)
                    else:
                        self._value_of(stmt.value, env)
            # for/while/with/try bodies are walked conservatively
            elif isinstance(stmt, (ast.For, ast.While, ast.With, ast.Try)):
                inner = list(getattr(stmt, "body", []))
                self._exec_block(inner, env, in_init, init_index)

    def _assign_value(self, stmt: ast.Assign, env: Dict[str, Value], in_init: bool) -> Value:
        node = stmt.value
        if in_init and isinstance(node, ast.Call):
            spec = self._layer_from_call(node, env)
            if spec is not None:
                return spec
        if in_init and isinstance(node, ast.IfExp):
            truth = self._truth(node.test)
            if truth is not None:
                picked = node.body if truth else node.orelse
                if isinstance(picked, ast.Call):
                    spec = self._layer_from_call(picked, env)
                    if spec is not None:
                        return spec
        dim = self.eval_dim(node, env)
        if dim is not None:
            return dim
        if not in_init:
            return self._value_of(node, env)
        return None

    def _exec_assign(self, stmt: ast.Assign, env: Dict[str, Value], in_init: bool) -> None:
        value = self._assign_value(stmt, env, in_init)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                # Track local aliases of boolean config flags for branch tests.
                flag = _config_flag(stmt.value)
                if flag is not None:
                    self._flag_aliases[target.id] = flag
                env[target.id] = value
            elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) and target.value.id == "self":
                self.attrs[target.attr] = value
            elif isinstance(target, (ast.Tuple, ast.List)):
                elements = target.elts
                parts: Sequence[Value]
                if isinstance(value, tuple) and len(value) == len(elements):
                    parts = value
                else:
                    parts = [None] * len(elements)
                for element, part in zip(elements, parts):
                    if isinstance(element, ast.Name):
                        env[element.id] = part
                    elif (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"
                    ):
                        self.attrs[element.attr] = part

    # -- forward-method interpretation ----------------------------------
    def run_method(self, name: str) -> Value:
        """Interpret one method, recording violations; returns its value."""
        if name in self._return_cache:
            return self._return_cache[name]
        entry = self._methods.get(name)
        if entry is None or name in self._analyzing or len(self._analyzing) >= self._MAX_DEPTH:
            return None
        method, path = entry
        self._analyzing.append(name)
        self._path_stack.append(path)
        env: Dict[str, Value] = {
            arg.arg: None for arg in method.args.args if arg.arg != "self"
        }
        returns: List[Value] = []
        try:
            self._exec_method_block(method.body, env, returns)
        finally:
            self._path_stack.pop()
            self._analyzing.pop()
        result: Value = None
        if returns:
            first = returns[0]
            if all(r == first for r in returns):
                result = first
        self._return_cache[name] = result
        return result

    def _exec_method_block(self, body: Sequence[ast.stmt], env: Dict[str, Value], returns: List[Value]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self._exec_assign(stmt, env, in_init=False)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = None
            elif isinstance(stmt, ast.If):
                truth = self._truth(stmt.test)
                if truth is True:
                    self._exec_method_block(stmt.body, env, returns)
                elif truth is False:
                    self._exec_method_block(stmt.orelse, env, returns)
                else:
                    env_a = dict(env)
                    env_b = dict(env)
                    self._exec_method_block(stmt.body, env_a, returns)
                    self._exec_method_block(stmt.orelse, env_b, returns)
                    for key in set(env_a) | set(env_b):
                        val_a, val_b = env_a.get(key), env_b.get(key)
                        env[key] = val_a if val_a == val_b else None
            elif isinstance(stmt, ast.Return):
                returns.append(self._value_of(stmt.value, env) if stmt.value else None)
            elif isinstance(stmt, ast.Expr):
                self._value_of(stmt.value, env)
            elif isinstance(stmt, (ast.For, ast.While, ast.With, ast.Try)):
                self._exec_method_block(list(getattr(stmt, "body", [])), env, returns)

    # -- expression values ----------------------------------------------
    def _value_of(self, node: ast.AST, env: Dict[str, Value]) -> Value:
        """Symbolic last-axis dimension (or tuple of values) of an expression."""
        if node is None:
            return None
        dim = self.eval_dim(node, env)
        if dim is not None:
            return dim
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Tuple):
            return tuple(self._value_of(e, env) for e in node.elts)
        if isinstance(node, ast.Subscript):
            return self._subscript_value(node, env)
        if isinstance(node, ast.Call):
            return self._call_value(node, env)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            # x @ w: the result's last axis is w's last axis.
            right = self._value_of(node.right, env)
            return right if isinstance(right, SymDim) else None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
            left = self._value_of(node.left, env)
            right = self._value_of(node.right, env)
            if isinstance(left, SymDim) and isinstance(right, SymDim):
                if left == right:
                    return left
                if right.as_const() == 1:
                    return left
                if left.as_const() == 1:
                    return right
            return None
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                value = self.attrs.get(node.attr)
                return value if not isinstance(value, LayerSpec) else None
        return None

    def _subscript_value(self, node: ast.Subscript, env: Dict[str, Value]) -> Value:
        value = self._value_of(node.value, env)
        index = node.slice
        if isinstance(value, tuple):
            if isinstance(index, ast.Constant) and isinstance(index.value, int):
                if -len(value) <= index.value < len(value):
                    return value[index.value]
            return None
        if isinstance(value, SymDim):
            # Slicing that keeps the last axis intact preserves the dim:
            # x[:, t, :] (last element is a full slice) or x[a:b].
            if isinstance(index, ast.Tuple) and index.elts:
                last = index.elts[-1]
                if isinstance(last, ast.Slice):
                    return value
                return None
            if isinstance(index, ast.Slice):
                return value
        return None

    def _call_value(self, node: ast.Call, env: Dict[str, Value]) -> Value:
        func = node.func
        # self.<attr>(...) — a layer call or a method call.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) and func.value.id == "self":
            spec = self.attrs.get(func.attr)
            if isinstance(spec, LayerSpec):
                return self._apply_layer(func.attr, spec, node, env)
            if func.attr in self._methods:
                return self.run_method(func.attr)
            return None
        name = _call_name(func)
        args = node.args
        if name == "concat":
            return self._concat_value(node, env)
        if name in ("cross_match",):
            first = self._value_of(args[0], env) if args else None
            return (first if isinstance(first, SymDim) else None, None)
        if name == "gather_last" and args:
            value = self._value_of(args[0], env)
            return value if isinstance(value, SymDim) else None
        if name == "where" and len(args) >= 3:
            a = self._value_of(args[1], env)
            b = self._value_of(args[2], env)
            if isinstance(a, SymDim) and a == b:
                return a
            return a if isinstance(a, SymDim) and b is None else (b if isinstance(b, SymDim) and a is None else None)
        if name == "stack":
            # stack introduces a new axis; the last axis survives unless the
            # new axis is appended at the end (axis=-1), which we treat as
            # unknown.
            axis = self._axis_of(node)
            if axis is not None and axis != -1:
                if args and isinstance(args[0], (ast.List, ast.Tuple)) and args[0].elts:
                    first = self._value_of(args[0].elts[0], env)
                    return first if isinstance(first, SymDim) else None
            return None
        # Free helper function resolved across modules (e.g. gather_last,
        # match_pattern): bind the call args and interpret its returns.
        if self.resolver is not None and isinstance(func, ast.Name):
            resolved = self.resolver(func.id)
            if resolved is not None:
                return self._helper_value(resolved[0], resolved[1], node, env)
        return None

    def _helper_value(
        self,
        fnode: ast.FunctionDef,
        path: str,
        call: ast.Call,
        env: Dict[str, Value],
    ) -> Value:
        """Value of a resolved free-function call, by interpreting its body."""
        key = f"helper:{fnode.name}"
        if key in self._analyzing or len(self._analyzing) >= self._MAX_DEPTH:
            return None
        params = [a.arg for a in fnode.args.args]
        inner_env: Dict[str, Value] = {p: None for p in params}
        for param, arg in zip(params, call.args):
            inner_env[param] = self._value_of(arg, env)
        for kw in call.keywords:
            if kw.arg in inner_env:
                inner_env[kw.arg] = self._value_of(kw.value, env)
        self._analyzing.append(key)
        self._path_stack.append(path)
        returns: List[Value] = []
        try:
            self._exec_method_block(fnode.body, inner_env, returns)
        finally:
            self._path_stack.pop()
            self._analyzing.pop()
        if returns:
            first = returns[0]
            if all(r == first for r in returns):
                return first
        return None

    def _axis_of(self, node: ast.Call) -> Optional[int]:
        for kw in node.keywords:
            if kw.arg == "axis" and isinstance(kw.value, ast.Constant):
                return kw.value.value if isinstance(kw.value.value, int) else None
            if kw.arg == "axis" and isinstance(kw.value, ast.UnaryOp):
                if isinstance(kw.value.op, ast.USub) and isinstance(kw.value.operand, ast.Constant):
                    return -kw.value.operand.value
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            value = node.args[1].value
            return value if isinstance(value, int) else None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.UnaryOp):
            unary = node.args[1]
            if isinstance(unary.op, ast.USub) and isinstance(unary.operand, ast.Constant):
                return -unary.operand.value
        return None

    def _concat_value(self, node: ast.Call, env: Dict[str, Value]) -> Value:
        axis = self._axis_of(node)
        if axis is None:
            axis = -1  # repro.autograd.concat defaults to the last axis
        if axis != -1:
            return None
        if not node.args or not isinstance(node.args[0], (ast.List, ast.Tuple)):
            return None
        total: Optional[SymDim] = SymDim.const(0)
        for element in node.args[0].elts:
            dim = self._value_of(element, env)
            if not isinstance(dim, SymDim):
                return None
            total = total + dim
        return total

    def _apply_layer(self, attr: str, spec: LayerSpec, node: ast.Call, env: Dict[str, Value]) -> Value:
        arg_value = self._value_of(node.args[0], env) if node.args else None
        in_dim = arg_value if isinstance(arg_value, SymDim) else None
        if in_dim is not None and spec.in_dim is not None and in_dim != spec.in_dim:
            self.violations.append(
                Violation(
                    path=self.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="S001",
                    message=(
                        f"`self.{attr}` (constructed at line {spec.lineno}) "
                        f"expects last-axis dimension {spec.in_dim.render()} "
                        f"but receives {in_dim.render()}"
                        f"{self.scenario.describe()}"
                    ),
                )
            )
        if spec.kind in ("linear", "mlp", "attention"):
            return spec.out_dim
        if spec.kind == "rnn":
            return (spec.out_dim, None)
        if spec.kind == "cell_pair":
            return (spec.out_dim, spec.out_dim)
        if spec.kind == "cell":
            return spec.out_dim
        if spec.kind == "activation":
            return arg_value
        return None


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

#: Methods interpreted as forward paths, in addition to plain ``forward``.
_FORWARD_METHODS = ("forward", "forward_pair", "encode_side", "step_features", "embed_points")

_MAX_FLAGS = 4


def _wiring_flags(classdef: ast.ClassDef) -> List[str]:
    """Config flags used as branch tests anywhere in the class."""
    flags = set()
    aliases: Dict[str, str] = {}
    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            flag = _config_flag(node.value)
            if flag is not None:
                aliases[node.targets[0].id] = flag
    for node in ast.walk(classdef):
        test = None
        if isinstance(node, (ast.If, ast.IfExp)):
            test = node.test
        if test is None:
            continue
        flag = _config_flag(test)
        if flag is None and isinstance(test, ast.Name):
            flag = aliases.get(test.id)
        if flag is not None:
            flags.add(flag)
    return sorted(flags)


def check_module_wiring(
    classdef: ast.ClassDef,
    path: str,
    bases: Sequence[Tuple[ast.ClassDef, str]] = (),
    resolver=None,
) -> List[Violation]:
    """Check one class's layer wiring across every flag scenario.

    ``bases`` supplies the rest of the MRO (each a ``(classdef, path)``
    pair, nearest base first) so inherited ``__init__``/forward methods are
    interpreted with subclass overrides in effect; ``resolver`` resolves
    free helper-function names across modules (see
    :class:`repro.analysis.dataflow.ProjectDataflow`).  Both default to
    empty for single-file use.
    """
    chain = [(classdef, path)] + list(bases)
    flags = sorted({f for c, _ in chain for f in _wiring_flags(c)})[:_MAX_FLAGS]
    scenarios = (
        [_Scenario(dict(zip(flags, combo))) for combo in itertools.product((True, False), repeat=len(flags))]
        if flags
        else [_Scenario()]
    )
    violations: List[Violation] = []
    for scenario in scenarios:
        interp = _Interpreter(chain, scenario, resolver=resolver)
        interp.run_init()
        if not any(isinstance(v, LayerSpec) for v in interp.attrs.values()):
            continue
        for method in _FORWARD_METHODS:
            interp.run_method(method)
        violations.extend(interp.violations)
    return violations
