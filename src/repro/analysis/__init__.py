"""Project-specific static analysis for the TMN reproduction.

The reproduction rests on a hand-written numpy autograd engine, where the
classic failure modes — silent in-place buffer mutation, unseeded RNG,
untested backward passes, mis-wired layer dimensions — corrupt gradients
or reproducibility *without failing any test loudly*.  This package
codifies the project's correctness rules as a machine-checked lint pass:

========  ==============================================================
R001      no global / unseeded numpy RNG — seeded Generators only
R002      no in-place mutation of ``Tensor.data``/``.grad`` buffers
R003      every differentiable op needs a finite-difference gradcheck test
R004      float64 engine discipline — no float32/float16 drift
R005      ``__all__`` must match each module's actual public surface
R006      docstrings on public functions, classes and methods
R007      no bare ``print`` in library code (use ``repro.obs.log``)
S001      symbolic layer-dimension wiring check, cross-module (no
          model execution; subclass overrides and helpers resolved)
D001      reachable tape ops need a backward closure and a gradcheck
D002      no mid-graph ``.data`` rewrap detaching gradients
N001      ``exp`` on unbounded input needs clip or max-subtraction
N002      ``log``/``sqrt`` need an epsilon guard
N003      division by a computed sum/norm needs an epsilon
N004      no float equality on tensor data
C001      shared mutable attribute written outside its inferred lock guard
C002      inconsistent guard — attribute read bare where writes are locked
C003      lock-order cycles / non-reentrant self-deadlock, cross-module
C004      blocking call (forward, queue/future wait, sleep) under a lock
C005      non-atomic check-then-act on shared state outside the guard
C006      ``threading.Thread`` without daemon= or join/close discipline
E001      ``# contract: never-raises`` function has an escaping exception
E002      ``except`` clause broader than what the body can raise
E003      swallowed exception — no re-raise, sentinel or obs logger call
E004      ``raise`` inside ``finally``/``__exit__`` masks in-flight errors
E005      exception constructed but never raised (bare ``ValueError(...)``)
E006      lock ``.acquire()`` without an exception-safe ``release()``
========  ==============================================================

The D-rules and S001 run on the cross-module dataflow index built by
:mod:`repro.analysis.dataflow` (symbol tables, class hierarchy, call
graph, reachability from the model forward methods).

Run it as ``python -m repro.analysis src/``, via ``repro-tmn lint`` or
``make lint``; the tier-1 tests ``tests/test_analysis.py`` and
``tests/test_analysis_dataflow.py`` keep the tree at zero violations.
Intentional exceptions are marked inline with ``# lint: allow(R00X)`` or
recorded in a JSON baseline file (``--baseline`` / ``--write-baseline``
/ ``--update-baseline``); reports are available as text, ``--format
json`` or ``--format sarif``.  ``--scope concurrency`` (or another
family name) restricts the run to one rule family, and ``--fail-on
{error,warning}`` picks the severity threshold that gates the exit code.
"""

from .baseline import Baseline, Suppression, load_baseline, write_baseline
from .engine import AnalysisReport, FileContext, ProjectContext, run_analysis
from .registry import RULES, Rule, format_rule_table, register, rule_catalogue
from .shapes import LayerSpec, SymDim, check_module_wiring
from .violations import Violation, format_text, sort_violations

__all__ = [
    "AnalysisReport",
    "Baseline",
    "FileContext",
    "LayerSpec",
    "ProjectContext",
    "RULES",
    "Rule",
    "Suppression",
    "SymDim",
    "Violation",
    "check_module_wiring",
    "format_rule_table",
    "format_text",
    "load_baseline",
    "main",
    "register",
    "rule_catalogue",
    "run_analysis",
    "sort_violations",
    "write_baseline",
]


def main(argv=None) -> int:
    """Entry point shared by ``python -m repro.analysis`` and the CLI.

    Parses lint arguments, runs the pass and prints the report; returns 1
    when violations remain (so it can gate CI) and 0 on a clean tree.
    """
    import argparse
    import sys
    from pathlib import Path

    from . import rules as _rules  # noqa: F401  (registers the catalogue)
    from .baseline import write_baseline as _write

    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Project lint: autograd safety rules + symbolic shape checks",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument("--tests", default=None, help="pytest suite location (default: ./tests)")
    parser.add_argument("--baseline", default=None, help="JSON suppression file")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="snapshot current findings to a baseline file and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="re-snapshot current findings into the --baseline file")
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                        dest="fmt", help="report format (default: text)")
    parser.add_argument("--json", action="store_true", help="shorthand for --format json")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--scope", default=None,
                        help="rule family to run (concurrency, stability, ...)")
    parser.add_argument("--fail-on", choices=("error", "warning"), default="warning",
                        dest="fail_on",
                        help="lowest severity that fails the run (default: warning)")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(format_rule_table())
        return 0

    selected = [r.strip() for r in args.rules.split(",")] if args.rules else None
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline PATH", file=sys.stderr)
        return 2
    try:
        report = run_analysis(
            [Path(p) for p in args.paths],
            tests_dir=args.tests,
            # --update-baseline runs unfiltered so the snapshot captures
            # every current finding, not just the unsuppressed ones.
            baseline=None if args.update_baseline else args.baseline,
            rules=selected,
            scope=args.scope,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline or args.update_baseline:
        target = args.write_baseline or args.baseline
        _write(target, report.violations)
        print(f"wrote {len(report.violations)} suppression(s) to {target}")
        return 0
    fmt = "json" if args.json else args.fmt
    if fmt == "json":
        print(report.to_json())
    elif fmt == "sarif":
        print(report.to_sarif())
    else:
        print(report.format_text())
    return 0 if not report.failing(args.fail_on) else 1
