"""Violation records produced by the static-analysis pass.

A :class:`Violation` pins one rule breach to a file and line.  Violations
are plain frozen dataclasses so they can be sorted, deduplicated, compared
against a JSON baseline and serialised without ceremony.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

__all__ = ["Violation", "format_text", "sort_violations"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach at a specific source location.

    Attributes
    ----------
    path:
        Path of the offending file, relative to the analysis root.
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule identifier (``R001`` ... ``R006``, ``S001``).
    message:
        Human-readable description of what the rule saw.
    severity:
        ``"error"`` (default) or ``"warning"``; the ``--fail-on``
        threshold decides which severities gate the exit code.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def location(self) -> str:
        """``path:line`` — the canonical way to cite a violation."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the JSON report and baseline files."""
        return asdict(self)


def sort_violations(violations: Iterable[Violation]) -> List[Violation]:
    """Deterministic report order: by file, then line, then rule id."""
    return sorted(set(violations))


def format_text(violations: Iterable[Violation]) -> str:
    """Render violations one-per-line, ``path:line:col: RULE message``.

    Non-error severities carry a trailing ``[warning]`` marker so the text
    report distinguishes gating findings from advisory ones.
    """
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule} {v.message}"
        + (f" [{v.severity}]" if v.severity != "error" else "")
        for v in sort_violations(violations)
    ]
    return "\n".join(lines)
