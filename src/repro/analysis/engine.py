"""The lint engine: file discovery, rule dispatch, suppression, reporting.

:func:`run_analysis` is the single entry point used by ``python -m
repro.analysis``, the ``repro-tmn lint`` subcommand and the tier-1 test.
It parses every target file once, hands the ASTs to each registered rule
(see :mod:`repro.analysis.registry`) and returns an
:class:`AnalysisReport` after applying inline ``# lint: allow(...)``
comments and the optional JSON baseline.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from .baseline import load_baseline
from .registry import RULES
from .violations import Violation, format_text, sort_violations

__all__ = ["FileContext", "ProjectContext", "AnalysisReport", "run_analysis"]

#: Inline suppression marker: ``# lint: allow(R002)`` or ``allow(R001, R004)``.
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([A-Za-z0-9_,\s]+)\)")

#: Directories never worth linting.
_SKIP_DIRS = {"__pycache__", ".git", "build", "dist", ".venv", "venv", "runs"}


@dataclass
class FileContext:
    """One parsed module, with everything file-scoped rules need."""

    path: Path  #: absolute path on disk
    rel: str  #: path relative to the analysis root (used in reports)
    source: str
    tree: ast.Module
    #: line number -> rule ids allowed on that line by inline comments
    allowed: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, rel: str) -> "FileContext":
        """Read and parse one file, collecting inline allow comments."""
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        allowed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                allowed.setdefault(lineno, set()).update(rules)
        return cls(path=path, rel=rel, source=source, tree=tree, allowed=allowed)

    def is_allowed(self, rule_id: str, line: int) -> bool:
        """Whether an inline comment on ``line`` suppresses ``rule_id``."""
        return rule_id in self.allowed.get(line, ())


@dataclass
class ProjectContext:
    """The whole analysis target: every file plus the test-suite location."""

    root: Path
    files: List[FileContext]
    tests_dir: Optional[Path] = None

    def file(self, rel: str) -> Optional[FileContext]:
        """Look up a parsed file by report-relative path."""
        for ctx in self.files:
            if ctx.rel == rel:
                return ctx
        return None


@dataclass
class AnalysisReport:
    """Outcome of one full lint pass."""

    violations: List[Violation]
    files_checked: int
    #: findings removed by inline ``# lint: allow`` comments or the baseline
    suppressed_count: int = 0

    @property
    def ok(self) -> bool:
        """True when the tree is clean."""
        return not self.violations

    @property
    def error_count(self) -> int:
        """Number of error-severity violations."""
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def warning_count(self) -> int:
        """Number of warning-severity violations."""
        return sum(1 for v in self.violations if v.severity != "error")

    def failing(self, fail_on: str = "warning") -> List[Violation]:
        """Violations at or above the ``--fail-on`` severity threshold.

        ``"warning"`` (the default) gates on everything, preserving the
        historical any-violation-fails behaviour; ``"error"`` lets
        warning-severity findings through without failing the run.
        """
        if fail_on not in ("error", "warning"):
            raise ValueError(f"unknown fail-on threshold {fail_on!r}")
        if fail_on == "warning":
            return list(self.violations)
        return [v for v in self.violations if v.severity == "error"]

    def format_text(self) -> str:
        """Human-readable report (one line per violation plus a summary)."""
        summary = (
            f"{len(self.violations)} violation(s) "
            f"({self.error_count} error(s), {self.warning_count} warning(s)) "
            f"in {self.files_checked} file(s)"
            if self.violations
            else f"clean: {self.files_checked} file(s), 0 violations"
        )
        if self.suppressed_count:
            summary += f" ({self.suppressed_count} suppressed)"
        body = format_text(self.violations)
        return f"{body}\n{summary}" if body else summary

    def to_json(self) -> str:
        """Machine-readable report for tooling."""
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "suppressed_count": self.suppressed_count,
                "error_count": self.error_count,
                "warning_count": self.warning_count,
                "violations": [v.to_dict() for v in self.violations],
            },
            indent=2,
        )

    def to_sarif(self) -> str:
        """SARIF 2.1.0 report, for CI annotation tooling and finding diffs."""
        from .registry import RULES

        rule_ids = sorted({v.rule for v in self.violations} | set(RULES))
        rules_meta = []
        for rid in rule_ids:
            rule = RULES.get(rid)
            entry = {"id": rid}
            if rule is not None:
                entry["shortDescription"] = {"text": rule.title}
                entry["fullDescription"] = {"text": rule.rationale}
            rules_meta.append(entry)
        results = [
            {
                "ruleId": v.rule,
                "level": "warning" if v.severity == "warning" else "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": v.path},
                            "region": {
                                "startLine": v.line,
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
            }
            for v in self.violations
        ]
        doc = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-tmn-lint",
                            "informationUri": "https://example.invalid/repro-tmn",
                            "rules": rules_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(doc, indent=2)


def _iter_python_files(target: Path) -> Iterable[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    for path in sorted(target.rglob("*.py")):
        parts = set(path.parts)
        if parts & _SKIP_DIRS or any(p.endswith(".egg-info") for p in path.parts):
            continue
        yield path


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_analysis(
    paths: Sequence[Union[str, Path]],
    tests_dir: Union[str, Path, None] = None,
    baseline: Union[str, Path, None] = None,
    root: Union[str, Path, None] = None,
    rules: Optional[Sequence[str]] = None,
    scope: Optional[str] = None,
) -> AnalysisReport:
    """Run every registered rule over ``paths`` and return the report.

    Parameters
    ----------
    paths:
        Files or directories to lint (directories are walked recursively).
    tests_dir:
        Location of the pytest suite, needed by project-scope rules such as
        R003 (gradcheck coverage).  Defaults to ``<root>/tests`` when that
        directory exists.
    baseline:
        Optional JSON suppression file (see :mod:`repro.analysis.baseline`).
    root:
        Directory report paths are made relative to; defaults to the
        current working directory.
    rules:
        Optional subset of rule ids to run (default: all registered).
    scope:
        Optional rule-family name (``concurrency``, ``stability``, ...);
        see :data:`repro.analysis.registry.SCOPE_FAMILIES`.  Combines with
        ``rules`` by intersection when both are given.
    """
    # Import for the registration side effect: rule modules populate RULES.
    from . import rules as _rules  # noqa: F401
    from .registry import rules_in_family

    if rules is not None:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    if scope is not None:
        family = rules_in_family(scope)
        rules = family if rules is None else sorted(set(rules) & set(family))

    root = Path(root) if root is not None else Path.cwd()
    if tests_dir is None:
        candidate = root / "tests"
        tests_dir = candidate if candidate.is_dir() else None
    else:
        tests_dir = Path(tests_dir)

    files: List[FileContext] = []
    parse_errors: List[Violation] = []
    seen: Set[Path] = set()
    for target in paths:
        if not Path(target).exists():
            # A typo'd path silently passing would defeat the CI gate.
            raise FileNotFoundError(f"lint target does not exist: {target}")
        for path in _iter_python_files(Path(target)):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = _relative(path, root)
            try:
                files.append(FileContext.parse(path, rel))
            except SyntaxError as exc:
                parse_errors.append(
                    Violation(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule="P000",
                        message=f"file does not parse: {exc.msg}",
                    )
                )

    project = ProjectContext(root=root, files=files, tests_dir=tests_dir)

    selected = [RULES[r] for r in sorted(RULES) if rules is None or r in rules]
    flow = None
    if any(rule.scope == "dataflow" for rule in selected):
        # Deferred import: dataflow imports FileContext/ProjectContext from
        # this module, so a top-level import would be circular.
        from .dataflow import ProjectDataflow

        flow = ProjectDataflow.build(project)

    raw: List[Violation] = list(parse_errors)
    for rule in selected:
        if rule.scope == "file":
            for ctx in files:
                raw.extend(rule.check(ctx))
        elif rule.scope == "dataflow":
            raw.extend(rule.check(project, flow))
        else:
            raw.extend(rule.check(project))

    kept: List[Violation] = []
    by_rel = {ctx.rel: ctx for ctx in files}
    for violation in raw:
        ctx = by_rel.get(violation.path)
        if ctx is not None and ctx.is_allowed(violation.rule, violation.line):
            continue
        kept.append(violation)

    filtered = load_baseline(baseline).filter(kept)
    return AnalysisReport(
        violations=sort_violations(filtered),
        files_checked=len(files) + len(parse_errors),
        suppressed_count=len(raw) - len(filtered),
    )
