"""Rule registry for the project lint pass.

Rules self-register via the :func:`register` decorator, which keeps the
catalogue (id, title, rationale) next to the implementation.  The engine
iterates :data:`RULES` so adding a rule is a one-file change.

Three scopes exist:

- ``"file"`` rules receive one :class:`~repro.analysis.engine.FileContext`
  at a time and see a single module's AST;
- ``"project"`` rules receive the whole
  :class:`~repro.analysis.engine.ProjectContext` and can cross-reference
  files (e.g. R003 matches ops against the test suite);
- ``"dataflow"`` rules additionally receive the
  :class:`~repro.analysis.dataflow.ProjectDataflow` index (symbol table,
  call graph, reachability) built once per run — the D-rules and the
  interprocedural shape checker live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

__all__ = [
    "Rule",
    "RULES",
    "SCOPE_FAMILIES",
    "register",
    "rule_catalogue",
    "rules_in_family",
]

#: ``--scope`` name -> rule-id prefixes it selects.  ``all`` means every
#: registered rule (the default when no scope is given).
SCOPE_FAMILIES: Dict[str, tuple] = {
    "all": (),
    "style": ("R",),
    "shapes": ("S",),
    "differentiability": ("D",),
    "stability": ("N",),
    "concurrency": ("C",),
}


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: identifier, documentation and checker."""

    rule_id: str
    title: str
    rationale: str
    scope: str  # "file", "project" or "dataflow"
    check: Callable[..., Iterable] = field(compare=False)

    def __post_init__(self) -> None:
        if self.scope not in ("file", "project", "dataflow"):
            raise ValueError(f"unknown rule scope {self.scope!r}")


#: Catalogue of every registered rule, keyed by rule id.
RULES: Dict[str, Rule] = {}


def register(rule_id: str, title: str, rationale: str, scope: str = "file"):
    """Class/function decorator that adds a checker to :data:`RULES`.

    The decorated callable keeps working as-is; registration is a side
    effect so rule modules only need to be imported once.
    """

    def wrap(check: Callable[..., Iterable]) -> Callable[..., Iterable]:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, title, rationale, scope, check)
        return check

    return wrap


def rule_catalogue() -> List[Rule]:
    """All registered rules in id order (for ``--rules`` and the docs)."""
    return [RULES[k] for k in sorted(RULES)]


def rules_in_family(scope: str) -> List[str]:
    """Rule ids selected by a ``--scope`` family name.

    Raises ``ValueError`` for unknown scopes; ``"all"`` returns every
    registered rule id.
    """
    if scope not in SCOPE_FAMILIES:
        known = ", ".join(sorted(SCOPE_FAMILIES))
        raise ValueError(f"unknown scope {scope!r} (expected one of: {known})")
    prefixes = SCOPE_FAMILIES[scope]
    if not prefixes:
        return sorted(RULES)
    return [rid for rid in sorted(RULES) if rid.startswith(prefixes)]
