"""Rule registry for the project lint pass.

Rules self-register via the :func:`register` decorator, which keeps the
catalogue (id, title, rationale) next to the implementation.  The engine
iterates :data:`RULES` so adding a rule is a one-file change.

Three scopes exist:

- ``"file"`` rules receive one :class:`~repro.analysis.engine.FileContext`
  at a time and see a single module's AST;
- ``"project"`` rules receive the whole
  :class:`~repro.analysis.engine.ProjectContext` and can cross-reference
  files (e.g. R003 matches ops against the test suite);
- ``"dataflow"`` rules additionally receive the
  :class:`~repro.analysis.dataflow.ProjectDataflow` index (symbol table,
  call graph, reachability) built once per run — the D-rules and the
  interprocedural shape checker live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

__all__ = [
    "Rule",
    "RULES",
    "SCOPE_FAMILIES",
    "FAMILY_NAMES",
    "format_rule_table",
    "register",
    "rule_catalogue",
    "rules_in_family",
]

#: ``--scope`` name -> rule-id prefixes it selects.  ``all`` means every
#: registered rule (the default when no scope is given).
SCOPE_FAMILIES: Dict[str, tuple] = {
    "all": (),
    "style": ("R",),
    "shapes": ("S",),
    "differentiability": ("D",),
    "stability": ("N",),
    "concurrency": ("C",),
    "exception": ("E",),
}

#: Rule-id prefix -> human family name (the inverse of SCOPE_FAMILIES,
#: used by ``--list-rules`` and the SARIF exporter).
FAMILY_NAMES: Dict[str, str] = {
    prefix: scope
    for scope, prefixes in SCOPE_FAMILIES.items()
    for prefix in prefixes
}


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: identifier, documentation and checker."""

    rule_id: str
    title: str
    rationale: str
    scope: str  # "file", "project" or "dataflow"
    check: Callable[..., Iterable] = field(compare=False)
    severity: str = "error"  # default finding severity: "error" or "warning"

    def __post_init__(self) -> None:
        if self.scope not in ("file", "project", "dataflow"):
            raise ValueError(f"unknown rule scope {self.scope!r}")
        if self.severity not in ("error", "warning"):
            raise ValueError(f"unknown rule severity {self.severity!r}")

    @property
    def family(self) -> str:
        """Family name of this rule (``concurrency`` for C00x, …)."""
        return FAMILY_NAMES.get(self.rule_id[:1], "misc")


#: Catalogue of every registered rule, keyed by rule id.
RULES: Dict[str, Rule] = {}


def register(
    rule_id: str,
    title: str,
    rationale: str,
    scope: str = "file",
    severity: str = "error",
):
    """Class/function decorator that adds a checker to :data:`RULES`.

    The decorated callable keeps working as-is; registration is a side
    effect so rule modules only need to be imported once.
    """

    def wrap(check: Callable[..., Iterable]) -> Callable[..., Iterable]:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, title, rationale, scope, check, severity)
        return check

    return wrap


def format_rule_table() -> str:
    """The full rule catalogue as an aligned text table.

    One row per registered rule — id, family, severity and the one-line
    title — generated from :data:`RULES` so ``--list-rules`` output can
    never drift from what the engine actually runs (the hand-maintained
    tables in README/DESIGN are checked against this).
    """
    rows = [("rule", "family", "severity", "title")]
    for rule in rule_catalogue():
        rows.append((rule.rule_id, rule.family, rule.severity, rule.title))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for row in rows:
        lines.append(
            "  ".join(col.ljust(widths[i]) for i, col in enumerate(row[:3]))
            + "  "
            + row[3]
        )
    return "\n".join(lines)


def rule_catalogue() -> List[Rule]:
    """All registered rules in id order (for ``--rules`` and the docs)."""
    return [RULES[k] for k in sorted(RULES)]


def rules_in_family(scope: str) -> List[str]:
    """Rule ids selected by a ``--scope`` family name.

    Raises ``ValueError`` for unknown scopes; ``"all"`` returns every
    registered rule id.
    """
    if scope not in SCOPE_FAMILIES:
        known = ", ".join(sorted(SCOPE_FAMILIES))
        raise ValueError(f"unknown scope {scope!r} (expected one of: {known})")
    prefixes = SCOPE_FAMILIES[scope]
    if not prefixes:
        return sorted(RULES)
    return [rid for rid in sorted(RULES) if rid.startswith(prefixes)]
