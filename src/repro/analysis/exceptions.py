"""Interprocedural exception-flow analysis: the may-raise model.

The serving tier's headline guarantee — :meth:`SimilarityServer.topk`
never raises — is a *global* property: one new ``raise`` (or one
un-narrowed ``except``) anywhere reachable from the serve root silently
voids it.  This module computes, for every function in the project, the
set of exceptions that can **escape** it, so the E-rule family (see
:mod:`repro.analysis.rules.exceptions`) can check the property at lint
time instead of relying on the fault-injection suite alone.

The model is a forward may-raise analysis over the PR 3
:class:`~repro.analysis.dataflow.ProjectDataflow`:

- **explicit raises** — ``raise X(...)`` resolves ``X`` through the
  module symbol tables; project exception classes are linked into the
  builtin hierarchy through their base lists, so handler subtraction
  honours subclassing across modules;
- **builtin raisers** — a curated catalogue of operations that raise
  without a ``raise`` statement: subscripts (``IndexError``/``KeyError``),
  ``int()``/``float()`` conversions (``ValueError``), single-argument
  ``next()`` (``StopIteration``), division/modulo
  (``ZeroDivisionError``) and ``assert`` (``AssertionError``);
- **handler subtraction** — an exception raised inside a ``try`` body
  only escapes when no enclosing handler catches it (bare ``except:``
  and ``except BaseException`` catch everything; tuples, re-raise and
  ``raise ... from`` are honoured; ``else``/``finally`` bodies are not
  protected by their own ``try``);
- **interprocedural propagation** — call sites resolved through the
  dataflow index (module functions, methods through the approximate MRO,
  ``self.<attr>`` instance calls, constructor ``__init__``) import the
  callee's current escape set, filtered through the caller's enclosing
  handlers, and the whole system is iterated to a fixpoint (recursion is
  safe: the transfer function is monotone over a finite lattice).

Unresolved calls (numpy, stdlib, callables passed in as values) are
assumed **non-raising**: the model is optimistic about the outside world
and exact about project code, which is the useful direction for a
never-raises proof — every escape it reports is rooted at a real project
raise site or catalogue event, so findings carry an actionable chain.

Each escaping exception remembers its origin (module, line, what raised)
and the call chain it travelled, so E001 findings print the full
propagation path.  Functions opt into verification with a
``# contract: never-raises`` comment on (or directly above) their
``def`` line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .dataflow import ClassInfo, ModuleInfo, ProjectDataflow, _dotted

__all__ = [
    "BUILTIN_EXC_PARENT",
    "Escape",
    "EFunc",
    "ExceptionModel",
    "HandlerFact",
    "build_exception_model",
]

#: Builtin exception hierarchy: class name -> direct parent name.  This
#: is the lattice order used for handler subtraction; anything unknown
#: is conservatively assumed to be a direct subclass of ``Exception``.
BUILTIN_EXC_PARENT: Dict[str, Optional[str]] = {
    "BaseException": None,
    "SystemExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "GeneratorExit": "BaseException",
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "BlockingIOError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "Warning": "Exception",
}

#: Builtins treated as non-raising for well-formed arguments (their
#: TypeError-on-wrong-type modes are type errors, not control flow the
#: model should track).  Calls to these neither raise nor count as
#: "unresolved external" for dead-handler precision.
_BENIGN_BUILTINS = frozenset(
    {
        "len", "str", "repr", "format", "bool", "id", "type", "hash",
        "isinstance", "issubclass", "callable", "hasattr", "vars",
        "sorted", "reversed", "enumerate", "zip", "range", "iter",
        "min", "max", "sum", "abs", "round", "divmod", "pow",
        "list", "dict", "set", "tuple", "frozenset", "bytes", "bytearray",
        "map", "filter", "any", "all", "super", "object", "print",
    }
)

#: Method names on the obs logger (and stdlib logging) whose call inside
#: an except body counts as *recording* the exception (E003 discharge).
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: The never-raises contract marker, on or directly above a ``def`` line.
_CONTRACT_RE = re.compile(r"#\s*contract:\s*never-raises\b")

#: Propagation chains longer than this are truncated for display.
_MAX_CHAIN = 12

#: Fixpoint safety valve; real call graphs converge in ~call-depth rounds.
_MAX_ROUNDS = 40


@dataclass(frozen=True)
class Escape:
    """One exception that can escape a function.

    Identity (hashing/equality) is the exception class plus the origin
    site, so escape sets stay finite under the fixpoint; the chain and
    description ride along for reporting only.
    """

    exc: str  #: exception class name
    origin_module: str  #: report-relative path of the raise site
    origin_line: int
    origin_desc: str = field(compare=False, default="raise")
    #: qualnames from the escaping function down to the origin function
    chain: Tuple[str, ...] = field(compare=False, default=())


@dataclass
class EFunc:
    """One analysed function: module-level, method, or nested ``def``.

    Unlike :class:`~repro.analysis.dataflow.FunctionInfo` this table
    includes nested functions (``run_serve_bench.worker`` style), because
    contract annotations and raise sites live inside closures too.
    """

    node: ast.AST  #: FunctionDef or AsyncFunctionDef
    module_rel: str
    qualname: str
    parent: Optional["EFunc"] = None
    cinfo: Optional[ClassInfo] = None
    children: Dict[str, "EFunc"] = field(default_factory=dict)
    never_raises: bool = False  #: carries the ``# contract: never-raises`` marker

    @property
    def key(self) -> str:
        """Model-table identifier, ``<module_rel>::<qualname>``."""
        return f"{self.module_rel}::{self.qualname}"

    @property
    def name(self) -> str:
        """Unqualified function name."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class HandlerFact:
    """What one ``except`` clause can see and what its body does.

    Collected on the converged model so ``reaching`` includes exceptions
    propagated out of fully-resolved callees in the ``try`` body.
    """

    fn: EFunc
    handler: ast.ExceptHandler
    #: resolved handler class names; None means bare ``except:``
    names: Optional[List[str]]
    #: exception names raised in the try body that reach this handler level
    reaching: Set[str]
    #: the try body (transitively) calls something the model cannot see
    body_external: bool
    reraises: bool
    logs: bool
    sentinel_return: bool
    computed_return: bool

    @property
    def is_broad(self) -> bool:
        """Catches ``Exception`` or wider (incl. bare / ``BaseException``)."""
        if self.names is None:
            return True
        return any(n in ("Exception", "BaseException") for n in self.names)

    @property
    def is_base_or_bare(self) -> bool:
        """Catches even ``KeyboardInterrupt``/``SystemExit``."""
        if self.names is None:
            return True
        return "BaseException" in self.names


@dataclass
class _RaiseSite:
    """A lexical fact the E004/E005 rules report directly."""

    fn: EFunc
    node: ast.AST
    detail: str


class ExceptionModel:
    """Per-function may-raise escape sets over the project call graph."""

    def __init__(self, flow: ProjectDataflow) -> None:
        self.flow = flow
        self.functions: Dict[str, EFunc] = {}
        self.escapes: Dict[str, Set[Escape]] = {}
        #: function key -> calls something unresolved, transitively
        self.external_calls: Dict[str, bool] = {}
        self.contracts: List[EFunc] = []
        self.handler_facts: List[HandlerFact] = []
        self.finally_raises: List[_RaiseSite] = []
        self.unraised_constructions: List[_RaiseSite] = []
        #: project exception class name -> parent class name
        self._project_exc_parent: Dict[str, str] = {}
        #: per-function (attr_types, local_types) cache across fixpoint rounds
        self._type_cache: Dict[str, Tuple[Dict, Dict]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, flow: ProjectDataflow) -> "ExceptionModel":
        """Index functions, link exception classes, iterate to fixpoint."""
        model = cls(flow)
        for minfo in flow.modules.values():
            model._collect_module(minfo)
        model._link_project_exceptions()
        model._mark_contracts()
        model._fixpoint()
        model._facts_pass()
        return model

    def _collect_module(self, minfo: ModuleInfo) -> None:
        rel = minfo.ctx.rel
        for node in minfo.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, rel, node.name, None, None)
            elif isinstance(node, ast.ClassDef):
                cinfo = minfo.classes.get(node.name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(
                            item, rel, f"{node.name}.{item.name}", None, cinfo
                        )

    def _add_function(
        self,
        node: ast.AST,
        rel: str,
        qualname: str,
        parent: Optional[EFunc],
        cinfo: Optional[ClassInfo],
    ) -> None:
        fn = EFunc(
            node=node, module_rel=rel, qualname=qualname, parent=parent, cinfo=cinfo
        )
        self.functions[fn.key] = fn
        if parent is not None:
            parent.children[fn.name] = fn
        for inner in _direct_inner_defs(node):
            self._add_function(inner, rel, f"{qualname}.{inner.name}", fn, cinfo)

    def _link_project_exceptions(self) -> None:
        """Map project exception classes into the builtin hierarchy.

        A class is an exception class when a base chain reaches a builtin
        exception name; its recorded parent is the first base that
        resolves (project class name or builtin name).
        """
        visiting: Set[str] = set()

        def link(minfo: ModuleInfo, cinfo: ClassInfo) -> Optional[str]:
            if cinfo.name in self._project_exc_parent:
                return self._project_exc_parent[cinfo.name]
            if cinfo.key in visiting:  # inheritance cycle: give up
                return None
            visiting.add(cinfo.key)
            for base in cinfo.node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                last = dotted.split(".")[-1]
                ref = self.flow.resolve(minfo, dotted)
                if ref is not None and ref.kind == "class":
                    base_cinfo = self.flow.class_info(ref)
                    base_minfo = self.flow.modules.get(ref.module_rel)
                    if base_cinfo is not None and base_minfo is not None:
                        if link(base_minfo, base_cinfo) is not None or (
                            base_cinfo.name in self._project_exc_parent
                        ):
                            self._project_exc_parent[cinfo.name] = base_cinfo.name
                            return base_cinfo.name
                    continue
                if last in BUILTIN_EXC_PARENT:
                    self._project_exc_parent[cinfo.name] = last
                    return last
            return None

        for minfo in self.flow.modules.values():
            for cinfo in minfo.classes.values():
                link(minfo, cinfo)

    def _mark_contracts(self) -> None:
        sources: Dict[str, List[str]] = {}
        for fn in self.functions.values():
            lines = sources.get(fn.module_rel)
            if lines is None:
                lines = self.flow.modules[fn.module_rel].ctx.source.splitlines()
                sources[fn.module_rel] = lines
            def_line = fn.node.lineno  # 1-based
            candidates = [def_line, def_line - 1]
            for lineno in candidates:
                if 1 <= lineno <= len(lines) and _CONTRACT_RE.search(
                    lines[lineno - 1]
                ):
                    fn.never_raises = True
                    self.contracts.append(fn)
                    break

    # ------------------------------------------------------------------
    # Exception hierarchy
    # ------------------------------------------------------------------
    def is_exception_subclass(self, name: str, base: str) -> bool:
        """Whether exception class ``name`` is ``base`` or derives from it.

        Walks project parents first, then the builtin table; unknown
        classes are assumed direct subclasses of ``Exception`` (so a
        broad ``except Exception`` is always credited with catching
        them, and narrow handlers never are).
        """
        cur: Optional[str] = name
        seen: Set[str] = set()
        while cur is not None and cur not in seen:
            if cur == base:
                return True
            seen.add(cur)
            if cur in self._project_exc_parent:
                cur = self._project_exc_parent[cur]
            elif cur in BUILTIN_EXC_PARENT:
                cur = BUILTIN_EXC_PARENT[cur]
            else:
                cur = "Exception"
        return False

    def known_exception_class(self, name: str) -> bool:
        """True for builtin exception names and linked project classes."""
        return name in BUILTIN_EXC_PARENT or name in self._project_exc_parent

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _fixpoint(self) -> None:
        self.escapes = {key: set() for key in self.functions}
        self.external_calls = {key: False for key in self.functions}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fn in self.functions.values():
                walker = _FnWalker(self, fn, collect_facts=False)
                walker.run()
                if walker.escaped != self.escapes[fn.key]:
                    self.escapes[fn.key] = walker.escaped
                    changed = True
                if walker.has_external and not self.external_calls[fn.key]:
                    self.external_calls[fn.key] = True
                    changed = True
            if not changed:
                break

    def _facts_pass(self) -> None:
        """One walk over the converged model collecting rule-level facts."""
        for fn in self.functions.values():
            _FnWalker(self, fn, collect_facts=True).run()


def build_exception_model(flow: ProjectDataflow) -> ExceptionModel:
    """Build (or return the cached) exception model for a dataflow index."""
    model = getattr(flow, "_exception_model", None)
    if model is None:
        model = ExceptionModel.build(flow)
        flow._exception_model = model
    return model


# ----------------------------------------------------------------------
# Function collection helpers
# ----------------------------------------------------------------------
def _direct_inner_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Nested ``def`` statements directly inside a function body.

    Does not descend into further nested functions (collected
    recursively by the caller), nested classes, or lambdas.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
        elif isinstance(child, (ast.ClassDef, ast.Lambda)):
            continue
        else:
            yield from _direct_inner_defs(child)


class _TryFrame:
    """Handler context for one enclosing ``try`` during the walk."""

    __slots__ = ("specs", "reaching", "body_external")

    def __init__(self, specs: List[Optional[List[str]]]) -> None:
        self.specs = specs
        self.reaching: Set[str] = set()
        self.body_external = False


class _FnWalker:
    """Flow-sensitive walk of one function producing its escape set."""

    def __init__(self, model: ExceptionModel, fn: EFunc, collect_facts: bool) -> None:
        self.model = model
        self.fn = fn
        self.minfo = model.flow.modules[fn.module_rel]
        self.collect_facts = collect_facts
        self.escaped: Set[Escape] = set()
        self.has_external = False
        self._finally_depth = 0
        cached = model._type_cache.get(fn.key)
        if cached is None:
            cinfo = fn.cinfo
            attr_types = model.flow.attr_types(cinfo) if cinfo is not None else {}
            cached = (attr_types, self._infer_local_types())
            model._type_cache[fn.key] = cached
        self._attr_types, self._local_types = cached

    # -- setup ----------------------------------------------------------
    def _infer_local_types(self) -> Dict[str, ClassInfo]:
        """``var = SomeClass(...)`` bindings, including enclosing scopes.

        Nested functions close over their parents' locals, so the chain
        of enclosing functions is scanned outermost-first (inner
        assignments shadow outer ones).
        """
        chain: List[EFunc] = []
        cur: Optional[EFunc] = self.fn
        while cur is not None:
            chain.append(cur)
            cur = cur.parent
        types: Dict[str, ClassInfo] = {}
        for scope in reversed(chain):
            for node in ast.walk(scope.node):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    classes = self.model.flow._call_result_classes(
                        self.minfo, node.value
                    )
                    if classes:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                types[target.id] = classes[0]
        return types

    def run(self) -> None:
        """Walk the function body; results land on the walker attributes."""
        body = getattr(self.fn.node, "body", [])
        self._walk_stmts(body, [], (), None)

    # -- statements -----------------------------------------------------
    def _walk_stmts(
        self,
        stmts: Sequence[ast.stmt],
        frames: List[_TryFrame],
        caught: Tuple[str, ...],
        binding: Optional[str],
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, frames, caught, binding)

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        frames: List[_TryFrame],
        caught: Tuple[str, ...],
        binding: Optional[str],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analysed as their own EFunc entries
        if isinstance(stmt, ast.Raise):
            self._handle_raise(stmt, frames, caught, binding)
            return
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            self._handle_try(stmt, frames, caught, binding)
            return
        if isinstance(stmt, ast.Assert):
            self._event(("AssertionError",), stmt, "assert", frames)
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Div, ast.FloorDiv, ast.Mod)
        ):
            self._event(("ZeroDivisionError",), stmt, "division", frames)
        if isinstance(stmt, ast.Expr) and self.collect_facts:
            self._check_unraised(stmt)
        # Generic traversal: visit expression children for raise events,
        # recurse into nested statement blocks with the same context.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child, frames)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child, frames, caught, binding)
            elif isinstance(child, ast.withitem):
                self._visit_expr(child.context_expr, frames)
            else:
                # match_case and friends: nested statement lists + exprs.
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self._visit_expr(sub, frames)
                    elif isinstance(sub, ast.stmt):
                        self._walk_stmt(sub, frames, caught, binding)

    def _handle_try(
        self,
        stmt: ast.Try,
        frames: List[_TryFrame],
        caught: Tuple[str, ...],
        binding: Optional[str],
    ) -> None:
        frame = _TryFrame([self._handler_spec(h) for h in stmt.handlers])
        self._walk_stmts(stmt.body, frames + [frame], caught, binding)
        for handler, spec in zip(stmt.handlers, frame.specs):
            if self.collect_facts:
                self._record_handler_fact(handler, spec, frame)
            handler_caught = tuple(
                sorted(
                    n for n in frame.reaching if self._spec_catches(spec, n)
                )
            )
            if not handler_caught:
                # Nothing concrete reached it: a bare re-raise still
                # re-propagates whatever the handler declares.
                handler_caught = tuple(spec) if spec else ("Exception",)
            # Handler bodies are NOT protected by their own try.
            self._walk_stmts(handler.body, frames, handler_caught, handler.name)
        self._walk_stmts(stmt.orelse, frames, caught, binding)
        self._finally_depth += 1
        try:
            self._walk_stmts(stmt.finalbody, frames, caught, binding)
        finally:
            self._finally_depth -= 1

    def _handle_raise(
        self,
        stmt: ast.Raise,
        frames: List[_TryFrame],
        caught: Tuple[str, ...],
        binding: Optional[str],
    ) -> None:
        if self.collect_facts and self._finally_depth > 0:
            self.model.finally_raises.append(
                _RaiseSite(self.fn, stmt, "raise inside finally")
            )
        if stmt.exc is None:
            # Bare re-raise: propagates the caught set.
            names: Tuple[str, ...] = caught or ("RuntimeError",)
            desc = "re-raise"
        elif (
            isinstance(stmt.exc, ast.Name)
            and binding is not None
            and stmt.exc.id == binding
        ):
            names = caught or ("Exception",)
            desc = "re-raise"
        else:
            resolved = self._exc_name(stmt.exc)
            names = (resolved,) if resolved is not None else ("Exception",)
            desc = f"raise {resolved or '<unresolved>'}"
        self._event(names, stmt, desc, frames)
        # Constructor arguments can themselves raise (f-strings, calls).
        if stmt.exc is not None:
            self._visit_expr(stmt.exc, frames)
        if stmt.cause is not None:
            self._visit_expr(stmt.cause, frames)

    # -- expressions ----------------------------------------------------
    def _visit_expr(self, node: Optional[ast.AST], frames: List[_TryFrame]) -> None:
        if node is None or isinstance(node, ast.Lambda):
            return  # lambda bodies run later, under unknowable handlers
        if isinstance(node, ast.Call):
            self._handle_call(node, frames)
        elif isinstance(node, ast.Subscript):
            if not isinstance(node.slice, ast.Slice):
                self._event(("IndexError", "KeyError"), node, "subscript", frames)
        elif isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Div, ast.FloorDiv, ast.Mod)
        ):
            self._event(("ZeroDivisionError",), node, "division", frames)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                self._visit_expr(child, frames)
            elif isinstance(child, ast.FormattedValue):
                self._visit_expr(child.value, frames)

    def _handle_call(self, node: ast.Call, frames: List[_TryFrame]) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("int", "float") and node.args:
                self._event(("ValueError",), node, f"{name}() conversion", frames)
                return
            if name == "next" and len(node.args) == 1:
                self._event(("StopIteration",), node, "next()", frames)
                return
            if name in _BENIGN_BUILTINS:
                return
        callees = self._resolve_callees(node)
        if not callees:
            # Constructing an exception object is not itself a raising
            # (or opaque) operation — only `raise`-ing it is.
            name = self._exc_name(node)
            if name is None or not self.model.known_exception_class(name):
                self._mark_external(frames)
            return
        for key in callees:
            for esc in self.model.escapes.get(key, ()):
                if self._filter(esc.exc, frames):
                    chain = (self.fn.qualname,) + esc.chain
                    if len(chain) > _MAX_CHAIN:
                        chain = chain[: _MAX_CHAIN - 1] + (chain[-1],)
                    self.escaped.add(
                        Escape(
                            exc=esc.exc,
                            origin_module=esc.origin_module,
                            origin_line=esc.origin_line,
                            origin_desc=esc.origin_desc,
                            chain=chain,
                        )
                    )
            if self.model.external_calls.get(key, False):
                self._mark_external(frames)

    def _resolve_callees(self, node: ast.Call) -> List[str]:
        """Model-table keys this call can land on; empty means external."""
        flow = self.model.flow
        func = node.func
        keys: List[str] = []

        # Nested function visible from the enclosing-scope chain.
        if isinstance(func, ast.Name):
            scope: Optional[EFunc] = self.fn
            while scope is not None:
                child = scope.children.get(func.id)
                if child is not None:
                    return [child.key]
                scope = scope.parent

        # self.<attr>(...): method through the MRO, else a stored instance.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.fn.cinfo is not None
        ):
            fi = flow.find_method(self.fn.cinfo, func.attr)
            if fi is not None:
                return self._known([f"{fi.module_rel}::{fi.qualname}"])
            attr_class = self._attr_types.get(func.attr)
            if attr_class is not None:
                return self._instance_call_keys(attr_class)
            return []

        # super().method(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.fn.cinfo is not None
        ):
            for klass in flow.mro(self.fn.cinfo)[1:]:
                if func.attr in klass.methods:
                    return self._known(
                        [f"{klass.module_rel}::{klass.name}.{func.attr}"]
                    )
            return []

        # self.<attr>.method(...): the attribute's inferred class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            attr_class = self._attr_types.get(func.value.attr)
            if attr_class is not None:
                return self._method_keys(attr_class, func.attr)
            return []

        # <factory()>.method(...): classes the receiver call constructs.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
            classes = flow._call_result_classes(self.minfo, func.value)
            if classes:
                return self._method_keys(classes[0], func.attr)
            return []

        dotted = _dotted(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            # local_var.method(...): the variable's inferred class.
            if rest and "." not in rest and head in self._local_types:
                return self._method_keys(self._local_types[head], rest)
            # Calling an instance held in a local: Class.__call__.
            if not rest and head in self._local_types:
                return self._instance_call_keys(self._local_types[head])
            ref = flow.resolve(self.minfo, dotted)
            if ref is not None:
                if ref.kind == "function":
                    return self._known([f"{ref.module_rel}::{ref.name}"])
                cinfo = flow.class_info(ref)
                if cinfo is not None:
                    init = flow.find_method(cinfo, "__init__")
                    if init is not None:
                        return self._known(
                            [f"{init.module_rel}::{init.qualname}"]
                        )
                    return []  # default object.__init__ cannot raise
        return keys

    def _method_keys(self, cinfo: ClassInfo, name: str) -> List[str]:
        fi = self.model.flow.find_method(cinfo, name)
        if fi is None:
            return []
        return self._known([f"{fi.module_rel}::{fi.qualname}"])

    def _instance_call_keys(self, cinfo: ClassInfo) -> List[str]:
        keys = []
        for mname in ("__call__", "forward"):
            fi = self.model.flow.find_method(cinfo, mname)
            if fi is not None:
                keys.append(f"{fi.module_rel}::{fi.qualname}")
        return self._known(keys)

    def _known(self, keys: List[str]) -> List[str]:
        return [k for k in keys if k in self.model.functions]

    # -- events ---------------------------------------------------------
    def _event(
        self,
        names: Tuple[str, ...],
        node: ast.AST,
        desc: str,
        frames: List[_TryFrame],
    ) -> None:
        for name in names:
            if self._filter(name, frames):
                self.escaped.add(
                    Escape(
                        exc=name,
                        origin_module=self.fn.module_rel,
                        origin_line=getattr(node, "lineno", 1),
                        origin_desc=desc,
                        chain=(self.fn.qualname,),
                    )
                )

    def _filter(self, name: str, frames: List[_TryFrame]) -> bool:
        """True when ``name`` escapes every enclosing handler frame."""
        for frame in reversed(frames):
            frame.reaching.add(name)
            for spec in frame.specs:
                if self._spec_catches(spec, name):
                    return False
        return True

    def _spec_catches(self, spec: Optional[List[str]], name: str) -> bool:
        if spec is None:
            return True  # bare except
        return any(self.model.is_exception_subclass(name, h) for h in spec)

    def _mark_external(self, frames: List[_TryFrame]) -> None:
        self.has_external = True
        for frame in frames:
            frame.body_external = True

    # -- resolution helpers ---------------------------------------------
    def _exc_name(self, expr: ast.AST) -> Optional[str]:
        """Exception class name for a raise/handler expression."""
        target = expr.func if isinstance(expr, ast.Call) else expr
        dotted = _dotted(target)
        if dotted is None:
            return None
        ref = self.model.flow.resolve(self.minfo, dotted)
        if ref is not None and ref.kind == "class":
            return ref.name
        last = dotted.split(".")[-1]
        if last in BUILTIN_EXC_PARENT:
            return last
        return None

    def _handler_spec(self, handler: ast.ExceptHandler) -> Optional[List[str]]:
        if handler.type is None:
            return None
        exprs = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names: List[str] = []
        for expr in exprs:
            resolved = self._exc_name(expr)
            if resolved is not None:
                names.append(resolved)
            else:
                dotted = _dotted(expr)
                # Unknown class: keep the literal name so identical
                # raises still match; it defaults under Exception.
                names.append(dotted.split(".")[-1] if dotted else "Exception")
        return names

    # -- facts ----------------------------------------------------------
    def _record_handler_fact(
        self,
        handler: ast.ExceptHandler,
        spec: Optional[List[str]],
        frame: _TryFrame,
    ) -> None:
        reraises = False
        logs = False
        sentinel = False
        computed = False
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                reraises = True
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in LOG_METHODS
            ):
                logs = True
            elif isinstance(node, ast.Return):
                if node.value is None or isinstance(node.value, ast.Constant):
                    sentinel = True
                else:
                    computed = True
        self.model.handler_facts.append(
            HandlerFact(
                fn=self.fn,
                handler=handler,
                names=spec,
                reaching=set(frame.reaching),
                body_external=frame.body_external,
                reraises=reraises,
                logs=logs,
                sentinel_return=sentinel,
                computed_return=computed,
            )
        )

    def _check_unraised(self, stmt: ast.Expr) -> None:
        """E005 fact: a bare-statement construction of an exception class."""
        if not isinstance(stmt.value, ast.Call):
            return
        name = self._exc_name(stmt.value)
        if name is not None and self.model.known_exception_class(name):
            self.model.unraised_constructions.append(
                _RaiseSite(self.fn, stmt, f"{name}(...) constructed but not raised")
            )
