"""JSON baseline / suppression file for the lint pass.

A baseline lets a PR adopt the linter without first fixing (or while
deliberately keeping) specific findings.  The file holds a list of
suppression entries; each entry names a rule and a path and optionally a
line and a reason::

    {
      "suppress": [
        {"rule": "R002", "path": "src/repro/optim/adam.py", "line": 74,
         "reason": "optimizer update step"}
      ]
    }

Entries without ``line`` match every occurrence of the rule in the file.
``repro.cli lint --write-baseline`` snapshots the current findings so a
follow-up PR can burn the list down entry by entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .violations import Violation

__all__ = ["Baseline", "Suppression", "load_baseline", "write_baseline"]


@dataclass(frozen=True)
class Suppression:
    """One baseline entry: a (rule, path[, line]) pattern with a reason."""

    rule: str
    path: str
    line: Optional[int] = None
    reason: str = ""

    def matches(self, violation: Violation) -> bool:
        """Whether this entry suppresses the given violation."""
        if self.rule != violation.rule or self.path != violation.path:
            return False
        return self.line is None or self.line == violation.line


@dataclass(frozen=True)
class Baseline:
    """A parsed suppression file."""

    suppressions: tuple

    def filter(self, violations: Iterable[Violation]) -> List[Violation]:
        """Drop every violation matched by a suppression entry."""
        return [
            v
            for v in violations
            if not any(s.matches(v) for s in self.suppressions)
        ]


def load_baseline(path: Union[str, Path, None]) -> Baseline:
    """Load a baseline file; a missing/None path yields an empty baseline."""
    if path is None:
        return Baseline(())
    path = Path(path)
    if not path.exists():
        return Baseline(())
    raw = json.loads(path.read_text())
    entries = []
    for item in raw.get("suppress", []):
        entries.append(
            Suppression(
                rule=str(item["rule"]),
                path=str(item["path"]),
                line=int(item["line"]) if "line" in item and item["line"] is not None else None,
                reason=str(item.get("reason", "")),
            )
        )
    return Baseline(tuple(entries))


def write_baseline(path: Union[str, Path], violations: Sequence[Violation]) -> None:
    """Snapshot current violations as a suppression file."""
    entries = [
        {"rule": v.rule, "path": v.path, "line": v.line, "reason": "baselined"}
        for v in sorted(set(violations))
    ]
    Path(path).write_text(json.dumps({"suppress": entries}, indent=2) + "\n")
