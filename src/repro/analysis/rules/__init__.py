"""Project-specific lint rules.

Importing this package registers every rule with
:data:`repro.analysis.registry.RULES`:

- R001 (:mod:`.rng`) — no global/unseeded numpy RNG;
- R002 (:mod:`.mutation`) — no in-place mutation of autograd buffers;
- R003 (:mod:`.coverage`) — every differentiable op has a gradcheck test;
- R004 (:mod:`.dtype`) — float64 engine discipline, no narrow-float drift;
- R005/R006 (:mod:`.api`) — ``__all__`` accuracy and public docstrings;
- R007 (:mod:`.prints`) — no bare ``print`` in library code;
- R008 (:mod:`.tracing`) — span/trace objects must be context-managed;
- R009 (:mod:`.profiling`) — sampler/tracemalloc sessions must be
  released via ``with`` or a ``finally`` stop;
- R010 (:mod:`.tracing`) — shard dispatch sites must propagate a
  ``TraceContext`` (no dispatch dicts without ``trace_ctx``, no
  discarded context tokens);
- S001 (:mod:`.wiring`) — symbolic layer-dimension checking;
- D001/D002 (:mod:`.differentiability`) — backward/gradcheck coverage and
  detach-free forward paths, audited over the cross-module call graph;
- N001–N004 (:mod:`.stability`) — numerical-stability guards for
  exp/log/sqrt/normalising divisions and float equality;
- C001–C006 (:mod:`.concurrency`) — lock-guard discipline, lock-order
  deadlock detection and thread hygiene over the serve tier;
- E001–E006 (:mod:`.exceptions`) — interprocedural exception flow: the
  never-raises serving contract, over-broad/dead handlers, swallowed
  exceptions, raising cleanup paths and exception-unsafe lock release.
"""

from . import (
    api,
    concurrency,
    coverage,
    differentiability,
    dtype,
    exceptions,
    mutation,
    prints,
    profiling,
    rng,
    stability,
    tracing,
    wiring,
)

__all__ = [
    "api",
    "concurrency",
    "coverage",
    "differentiability",
    "dtype",
    "exceptions",
    "mutation",
    "prints",
    "profiling",
    "rng",
    "stability",
    "tracing",
    "wiring",
]
