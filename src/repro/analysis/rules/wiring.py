"""S001 — symbolic layer-dimension wiring check (cross-module).

Adapter around :mod:`repro.analysis.shapes`: runs the abstract interpreter
over every class in the project that constructs recognised layers
(``Linear``/``LSTM``/``GRU``/``MLP``/``SelfAttention``...) and reports
producer/consumer dimension mismatches in the forward paths.

With the :class:`~repro.analysis.dataflow.ProjectDataflow` index the
checker is interprocedural: a subclass is interpreted together with its
base classes (so ``SiameseTrajectoryModel.__init__`` sizes the LSTM with
each baseline's overridden ``lstm_input_dim``), and free helper functions
(``gather_last``, ``match_pattern``...) are resolved across modules so
the symbolic last-axis dimension survives the call.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..dataflow import ClassInfo, ProjectDataflow
from ..engine import ProjectContext
from ..registry import register
from ..shapes import check_module_wiring
from ..violations import Violation

__all__ = ["check_wiring"]


def _make_resolver(flow: ProjectDataflow, mro: List[ClassInfo]):
    """Resolve a free helper name from any module of the class's MRO."""

    def resolve(name: str) -> Optional[Tuple[ast.FunctionDef, str]]:
        for klass in mro:
            module = flow.modules.get(klass.module_rel)
            if module is None:
                continue
            ref = flow.resolve(module, name)
            if ref is None or ref.kind != "function":
                continue
            fmod = flow.modules.get(ref.module_rel)
            fnode = fmod.functions.get(ref.name) if fmod is not None else None
            if fnode is not None:
                return fnode, ref.module_rel
        return None

    return resolve


@register(
    "S001",
    title="layer dimensions must line up symbolically",
    rationale=(
        "mis-wired Linear/LSTM/MLP dims survive unit tests whenever the "
        "test config makes wrong numbers coincide; symbolic checking "
        "catches them for every config"
    ),
    scope="dataflow",
)
def check_wiring(project: ProjectContext, flow: ProjectDataflow) -> Iterator[Violation]:
    """Run the symbolic shape checker over every class hierarchy."""
    for info in flow.modules.values():
        for cinfo in info.classes.values():
            mro = flow.mro(cinfo)
            bases = [(k.node, k.module_rel) for k in mro[1:]]
            yield from check_module_wiring(
                cinfo.node,
                cinfo.module_rel,
                bases=bases,
                resolver=_make_resolver(flow, mro),
            )
