"""S001 — symbolic layer-dimension wiring check.

Thin registry adapter around :mod:`repro.analysis.shapes`: runs the
abstract interpreter over every class in a file that constructs recognised
layers (``Linear``/``LSTM``/``GRU``/``MLP``/``SelfAttention``...) and
reports producer/consumer dimension mismatches in the forward paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..registry import register
from ..shapes import check_module_wiring
from ..violations import Violation

__all__ = ["check_wiring"]


@register(
    "S001",
    title="layer dimensions must line up symbolically",
    rationale=(
        "mis-wired Linear/LSTM/MLP dims survive unit tests whenever the "
        "test config makes wrong numbers coincide; symbolic checking "
        "catches them for every config"
    ),
)
def check_wiring(ctx: FileContext) -> Iterator[Violation]:
    """Run the symbolic shape checker over every class in the file."""
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            yield from check_module_wiring(node, ctx.rel)
