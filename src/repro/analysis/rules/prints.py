"""R007 — no bare ``print`` in library code.

Library modules must report through :mod:`repro.obs.log` (structured,
leveled, JSONL-mirrorable) instead of ``print``: bare prints bypass the
run record, cannot be silenced or redirected by callers, and interleave
with CLI result tables on stdout.  Front-ends whose *product* is text on
stdout are exempt: the ``repro-tmn`` CLI (``cli.py``), the analysis
tooling itself (``repro/analysis/``) and ``__main__.py`` scripts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..registry import register
from ..violations import Violation

__all__ = ["check_no_print", "is_front_end"]


def is_front_end(rel: str) -> bool:
    """Whether a report-relative path is an exempt stdout front-end."""
    return (
        rel.endswith("cli.py")
        or rel.endswith("__main__.py")
        or "analysis/" in rel
    )


@register(
    "R007",
    title="no bare print in library code",
    rationale=(
        "library modules must report through repro.obs.log so events are "
        "leveled, structured and mirrorable to JSONL; bare prints bypass "
        "the run record and pollute CLI stdout"
    ),
)
def check_no_print(ctx: FileContext) -> Iterator[Violation]:
    """Flag every ``print(...)`` call outside the exempt front-ends."""
    if is_front_end(ctx.rel):
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R007",
                message=(
                    "bare `print` in library code; use "
                    "`repro.obs.log.get_logger(...)` (or return a string "
                    "for the CLI to print)"
                ),
            )
