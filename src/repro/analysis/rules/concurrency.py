"""C001–C006: lock discipline, lock order, and thread hygiene.

These rules run on the :class:`~repro.analysis.concurrency.ConcurrencyModel`
built over the project dataflow index (see that module for the guard
inference and escape analysis they share):

- **C001** — shared mutable attribute written outside its inferred guard
  (or bare in a thread-shared class, or through a thread-target closure);
- **C002** — inconsistent guard: an attribute read under its lock on some
  paths and bare on others (warning — reads of a torn value);
- **C003** — lock-order cycles and non-reentrant self-deadlocks in the
  static acquisition-order graph, across modules;
- **C004** — blocking call (model forward, queue/future wait,
  ``time.sleep``) while holding a lock;
- **C005** — non-atomic check-then-act: ``if self.x ...: ... self.x ...``
  outside the guard that makes the pair atomic;
- **C006** — ``threading.Thread`` without ``daemon=`` or a join/close
  discipline (warning — leaked threads outlive their owner).

``# lint: allow(Cxxx)`` suppresses a finding inline; the lock-shim module
itself (:data:`~repro.analysis.concurrency.LOCK_IMPL_MODULES`) is exempt
from the guard rules because it mutates its bookkeeping around raw
acquire/release calls the lexical model cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..concurrency import (
    LOCK_IMPL_MODULES,
    ConcurrencyModel,
    build_model,
)
from ..dataflow import ProjectDataflow
from ..engine import ProjectContext
from ..registry import register
from ..violations import Violation

__all__ = [
    "check_unguarded_writes",
    "check_inconsistent_guard",
    "check_lock_order",
    "check_blocking_under_lock",
    "check_check_then_act",
    "check_thread_discipline",
]


def _exempt(path: str) -> bool:
    return path.endswith(LOCK_IMPL_MODULES)


def _short(lock_id: str) -> str:
    """Compact lock name for messages: ``metrics.py::_UPDATE_LOCK``."""
    module_rel, _, name = lock_id.partition("::")
    return f"{module_rel.rsplit('/', 1)[-1]}::{name}"


def _shorts(lock_ids) -> str:
    return ", ".join(sorted(_short(l) for l in lock_ids))


def _violation(
    path: str, node: ast.AST, rule: str, message: str, severity: str = "error"
) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
        severity=severity,
    )


@register(
    "C001",
    title="shared mutable state written outside its lock",
    rationale=(
        "An attribute written under a lock somewhere must be written under "
        "it everywhere (and thread-shared state needs a lock at all): a "
        "bare write races with every guarded reader and writer."
    ),
    scope="dataflow",
)
def check_unguarded_writes(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag guarded attributes written bare, and bare shared-class writes."""
    model = build_model(flow)
    seen: Set[Tuple[str, int, str]] = set()
    for acc in model.accesses:
        path = acc.fi.module_rel
        if _exempt(path) or not acc.write or acc.in_init:
            continue
        key = (path, getattr(acc.node, "lineno", 1), acc.attr)
        if key in seen:
            continue
        guard = model.guard_of(acc.class_key, acc.attr)
        if guard:
            if not (set(acc.held) & guard):
                seen.add(key)
                yield _violation(
                    path,
                    acc.node,
                    "C001",
                    f"`self.{acc.attr}` is guarded by {_shorts(guard)} "
                    f"elsewhere but written here without it",
                )
        elif (
            acc.kind == "assign"
            and not acc.held
            and acc.class_key in model.shared_classes
        ):
            seen.add(key)
            yield _violation(
                path,
                acc.node,
                "C001",
                f"`self.{acc.attr}` of thread-shared class "
                f"`{acc.class_key.rsplit('::', 1)[-1]}` is written with no "
                f"lock held and no inferred guard",
            )
    for cw in model.closure_writes:
        path = cw.fi.module_rel
        if _exempt(path) or cw.held:
            continue
        targets = model.thread_closures.get(cw.fi.node_id, set())
        if cw.func_name not in targets:
            continue
        key = (path, getattr(cw.node, "lineno", 1), cw.name)
        if key in seen:
            continue
        seen.add(key)
        yield _violation(
            path,
            cw.node,
            "C001",
            f"thread-target closure `{cw.func_name}` writes shared "
            f"`{cw.name}` with no lock held",
        )


@register(
    "C002",
    title="inconsistent lock guard on attribute access",
    rationale=(
        "Reading an attribute bare that is written under a lock elsewhere "
        "can observe torn or stale state; take the guard or justify why "
        "the bare read is benign."
    ),
    scope="dataflow",
    severity="warning",
)
def check_inconsistent_guard(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag bare reads of attributes that have an inferred lock guard."""
    model = build_model(flow)
    seen: Set[Tuple[str, int, str]] = set()
    for acc in model.accesses:
        path = acc.fi.module_rel
        if _exempt(path) or acc.write or acc.in_init:
            continue
        guard = model.guard_of(acc.class_key, acc.attr)
        if not guard or (set(acc.held) & guard):
            continue
        key = (path, getattr(acc.node, "lineno", 1), acc.attr)
        if key in seen:
            continue
        seen.add(key)
        yield _violation(
            path,
            acc.node,
            "C002",
            f"`self.{acc.attr}` is read without {_shorts(guard)}, which "
            f"guards its writes",
            severity="warning",
        )


@register(
    "C003",
    title="lock-order cycle / non-reentrant self-deadlock",
    rationale=(
        "Two threads acquiring the same locks in opposite orders deadlock; "
        "re-acquiring a non-reentrant lock deadlocks a single thread.  The "
        "static acquisition-order graph must stay acyclic."
    ),
    scope="dataflow",
)
def check_lock_order(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag cycles in the acquisition-order graph and lock re-acquires."""
    model = build_model(flow)
    for edge in model.self_deadlocks:
        detail = (
            "nested `with` re-acquires it in the same thread"
            if edge.via == "nested"
            else "a call made while holding it acquires it again"
        )
        yield _violation(
            edge.module_rel,
            _line_node(edge.line),
            "C003",
            f"non-reentrant lock {_short(edge.src)} would self-deadlock: "
            f"{detail} (use an RLock or restructure)",
        )
    for cycle in model.cycles:
        site = None
        n = len(cycle)
        for i in range(n):
            site = model.edge_site(cycle[i], cycle[(i + 1) % n])
            if site is not None:
                break
        chain = " -> ".join(_short(l) for l in cycle + cycle[:1])
        yield _violation(
            site.module_rel if site else cycle[0].partition("::")[0],
            _line_node(site.line if site else 1),
            "C003",
            f"lock-order cycle: {chain} — threads taking these locks in "
            f"different orders can deadlock",
        )


class _line_node:
    """Minimal node-like carrier so order findings reuse ``_violation``."""

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0


@register(
    "C004",
    title="blocking call while holding a lock",
    rationale=(
        "A model forward, queue/future wait or sleep inside a critical "
        "section serialises every other thread on that lock for the full "
        "blocking duration — move the slow work outside the lock."
    ),
    scope="dataflow",
)
def check_blocking_under_lock(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag encode/forward, queue waits, future waits, sleeps under locks."""
    model = build_model(flow)
    for call in model.blocking:
        yield _violation(
            call.fi.module_rel,
            call.node,
            "C004",
            f"blocking call {call.desc} while holding {_shorts(call.held)}",
        )


@register(
    "C005",
    title="non-atomic check-then-act on shared state",
    rationale=(
        "`if self.x ...: ... self.x ...` outside the guard is a TOCTOU "
        "race: the state can change between the check and the act.  Put "
        "both sides in one critical section."
    ),
    scope="dataflow",
)
def check_check_then_act(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag guarded attributes checked and then acted on outside the lock."""
    model = build_model(flow)
    seen: Set[Tuple[str, int, str]] = set()
    for check in model.checks:
        path = check.fi.module_rel
        if _exempt(path):
            continue
        guard = model.guard_of(check.class_key, check.attr)
        if not guard or (set(check.held) & guard):
            continue
        key = (path, check.node.lineno, check.attr)
        if key in seen:
            continue
        seen.add(key)
        yield _violation(
            path,
            check.node,
            "C005",
            f"check-then-act on `self.{check.attr}` outside "
            f"{_shorts(guard)}: the test and the action are not atomic",
        )


@register(
    "C006",
    title="thread without daemon= or join discipline",
    rationale=(
        "A non-daemon thread that nothing joins outlives its owner and "
        "blocks interpreter shutdown; pass daemon= explicitly or join it "
        "on the owner's close path."
    ),
    scope="dataflow",
    severity="warning",
)
def check_thread_discipline(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag ``threading.Thread(...)`` sites with no lifecycle discipline."""
    model = build_model(flow)
    for spawn in model.spawns:
        if spawn.has_daemon or _joined(model, spawn):
            continue
        yield _violation(
            spawn.fi.module_rel,
            spawn.node,
            "C006",
            "threading.Thread(...) without daemon= and without a visible "
            "join/close discipline",
            severity="warning",
        )


def _joined(model: ConcurrencyModel, spawn) -> bool:
    """Whether a spawn site has a join discipline the model can see."""
    if _has_plain_join(spawn.fi.node):
        return True
    if spawn.assigned_attr is None or "." not in spawn.fi.qualname:
        return False
    clsname = spawn.fi.qualname.split(".")[0]
    module = model.flow.modules.get(spawn.fi.module_rel)
    cinfo = module.classes.get(clsname) if module else None
    if cinfo is None:
        return False
    for mnode in cinfo.methods.values():
        for sub in ast.walk(mnode):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "join"
                and isinstance(sub.func.value, ast.Attribute)
                and isinstance(sub.func.value.value, ast.Name)
                and sub.func.value.value.id == "self"
                and sub.func.value.attr == spawn.assigned_attr
            ):
                return True
    return False


def _has_plain_join(fn_node: ast.AST) -> bool:
    """A zero-positional-argument ``.join()`` call anywhere in the function."""
    for sub in ast.walk(fn_node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "join"
            and not sub.args
        ):
            return True
    return False
