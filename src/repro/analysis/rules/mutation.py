"""R002 — no in-place mutation of autograd-tracked buffers.

The tape built by :mod:`repro.autograd` closes over the *same* ndarrays a
``Tensor`` carries in ``.data``; backward closures read them after the
forward pass.  Mutating such a buffer in place (``t.data += ...``,
``t.data[i] = ...``, ``np.add.at(t.data, ...)``, ``t.data.fill(...)``)
silently corrupts every gradient computed from it — no exception, just
wrong training.  Rebinding (``p.data = p.data - lr * g``) is safe because
the old buffer stays intact for the tape.

Sanctioned in-place updates (the optimizer step, where no live tape refers
to the parameter buffer) carry an inline ``# lint: allow(R002)`` marker.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext
from ..names import import_aliases, qualified_name
from ..registry import register
from ..violations import Violation

__all__ = ["check_mutation"]

#: Attributes whose buffers the autograd tape may hold references to.
_TRACKED_ATTRS = {"data", "grad"}

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = {"fill", "put", "sort", "partition", "resize", "setfield", "itemset"}

#: numpy ufunc-level in-place APIs: ``np.add.at(target, idx, val)`` etc.
_UFUNC_AT_PREFIXES = ("numpy.add.at", "numpy.subtract.at", "numpy.multiply.at", "numpy.divide.at")


def _tracked_attr(node: ast.AST) -> Optional[ast.Attribute]:
    """The ``.data``/``.grad`` attribute inside an expression chain, if any."""
    while True:
        if isinstance(node, ast.Attribute):
            if node.attr in _TRACKED_ATTRS:
                return node
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return None


def _violation(ctx: FileContext, node: ast.AST, what: str) -> Violation:
    return Violation(
        path=ctx.rel,
        line=node.lineno,
        col=node.col_offset,
        rule="R002",
        message=(
            f"{what} mutates an autograd-tracked buffer in place; the tape "
            "may hold a reference to it, so gradients would be silently "
            "wrong — rebind instead, or mark a sanctioned optimizer update "
            "with `# lint: allow(R002)`"
        ),
    )


@register(
    "R002",
    title="no in-place mutation of Tensor.data / .grad buffers",
    rationale=(
        "backward closures read forward-pass arrays after the fact; "
        "in-place writes corrupt gradients without any error"
    ),
)
def check_mutation(ctx: FileContext) -> Iterator[Violation]:
    """Flag augmented/slice assignment and mutating calls on ``.data``/``.grad``."""
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AugAssign):
            if _tracked_attr(node.target) is not None:
                yield _violation(ctx, node, "augmented assignment")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Tuple, ast.List)):
                    elements = (
                        target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                    )
                    for element in elements:
                        if (
                            isinstance(element, ast.Subscript)
                            and _tracked_attr(element) is not None
                        ):
                            yield _violation(ctx, node, "slice assignment")
        elif isinstance(node, ast.Call):
            # t.data.fill(0) and friends.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and _tracked_attr(func.value) is not None
            ):
                yield _violation(ctx, node, f"`.{func.attr}()` call")
                continue
            # np.add.at(t.data, idx, val) and friends.
            qual = qualified_name(func, aliases)
            if qual in _UFUNC_AT_PREFIXES and node.args:
                if _tracked_attr(node.args[0]) is not None:
                    yield _violation(ctx, node, f"`{qual}` call")
