"""R004 — float64 engine discipline (no narrow-float drift).

The autograd engine, the metrics and the optimizers all assume float64:
gradcheck tolerances, the fused-kernel comparisons and the DTW family are
calibrated for double precision.  A single ``float32`` array introduced
anywhere silently downcasts everything it touches via numpy promotion
rules, loosening gradients until finite-difference checks flake.  The rule
flags explicit narrow-float dtype requests — ``dtype=np.float32``,
``astype("float32")``, ``np.float16(...)`` — anywhere in the tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext
from ..names import import_aliases, qualified_name
from ..registry import register
from ..violations import Violation

__all__ = ["check_dtype"]

#: Narrow float dtypes the float64 engine must never see.
_NARROW_QUALNAMES = {
    "numpy.float32",
    "numpy.float16",
    "numpy.single",
    "numpy.half",
}
_NARROW_STRINGS = {"float32", "float16", "single", "half", "f4", "f2", "<f4", "<f2"}


def _narrow_dtype(node: ast.AST, aliases) -> Optional[str]:
    """The narrow-float dtype an expression denotes, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_STRINGS:
            return node.value
        return None
    qual = qualified_name(node, aliases)
    if qual in _NARROW_QUALNAMES:
        return qual
    return None


@register(
    "R004",
    title="no implicit float32/float16 drift",
    rationale=(
        "the engine is calibrated for float64 end to end; one narrow-float "
        "array silently downcasts everything via promotion and loosens "
        "gradients past the gradcheck tolerances"
    ),
)
def check_dtype(ctx: FileContext) -> Iterator[Violation]:
    """Flag explicit narrow-float dtype requests."""
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        found: Optional[str] = None
        # np.float32(x) / np.half(x) constructor calls.
        qual = qualified_name(node.func, aliases)
        if qual in _NARROW_QUALNAMES:
            found = qual
        # dtype=... keyword on any call (np.array, np.zeros, astype, ...).
        if found is None:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    found = _narrow_dtype(kw.value, aliases)
                    if found:
                        break
        # x.astype(np.float32) positional form.
        if (
            found is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("astype", "view")
            and node.args
        ):
            found = _narrow_dtype(node.args[0], aliases)
        if found:
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R004",
                message=(
                    f"narrow float dtype `{found}` requested; the engine is "
                    "float64-only — implicit promotion would silently drift "
                    "precision across the tape"
                ),
            )
