"""R008 — span/trace objects must be used as context managers.

A ``span(...)`` / ``trace(...)`` / ``trace_span(...)`` call whose result
is discarded records *nothing*: the timing only happens inside
``__enter__``/``__exit__``, so a bare call is always a silent
observability bug (the author believed a section was timed when it was
not).  Likewise calling ``__enter__`` directly bypasses the guaranteed
``__exit__`` and leaks an open span on the thread-local stack.

Flagged:

- an expression statement that is a bare span-like call —
  ``span("x")`` / ``self.spans.span("x")`` / ``tracer.trace("x")`` /
  ``trace_span("x")`` / ``trace.handoff()`` with the result dropped;
- any direct ``something.__enter__()`` call.

Not flagged: ``with span(...):``, results that are stored, returned,
passed as arguments, or otherwise consumed.  ``# lint: allow(R008)``
is the escape hatch for intentional cases.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..registry import register
from ..violations import Violation

__all__ = ["check_span_context_managers"]

#: Call names (plain or attribute) that produce span/trace context objects.
_SPAN_LIKE = {"span", "trace", "trace_span", "handoff"}


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


@register(
    "R008",
    title="span/trace objects must be context-managed",
    rationale=(
        "a span(...)/trace(...)/trace_span(...)/handoff() result that is "
        "neither entered via `with` nor stored records nothing — the "
        "timing lives in __enter__/__exit__ — so a discarded call is a "
        "silent observability bug; direct __enter__ calls leak open spans"
    ),
)
def check_span_context_managers(ctx: FileContext) -> Iterator[Violation]:
    """Flag discarded span-like calls and direct ``__enter__`` invocations."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            name = _call_name(node.value)
            if name in _SPAN_LIKE:
                yield Violation(
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="R008",
                    message=(
                        f"result of `{name}(...)` is discarded; enter it with "
                        "`with` (or store the token) so the span is recorded"
                    ),
                )
        elif isinstance(node, ast.Call) and _call_name(node) == "__enter__":
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R008",
                message=(
                    "direct `__enter__()` call bypasses the guaranteed "
                    "`__exit__`; use a `with` block"
                ),
            )
