"""R008/R010 — tracing tokens must be consumed, and shipped across shards.

**R008**: a ``span(...)`` / ``trace(...)`` / ``trace_span(...)`` call
whose result is discarded records *nothing*: the timing only happens
inside ``__enter__``/``__exit__``, so a bare call is always a silent
observability bug (the author believed a section was timed when it was
not).  Likewise calling ``__enter__`` directly bypasses the guaranteed
``__exit__`` and leaks an open span on the thread-local stack.

Flagged:

- an expression statement that is a bare span-like call —
  ``span("x")`` / ``self.spans.span("x")`` / ``tracer.trace("x")`` /
  ``trace_span("x")`` / ``trace.handoff()`` with the result dropped;
- any direct ``something.__enter__()`` call.

Not flagged: ``with span(...):``, results that are stored, returned,
passed as arguments, or otherwise consumed.  ``# lint: allow(R008)``
is the escape hatch for intentional cases.

**R010**: shard dispatch sites must propagate a
:class:`~repro.obs.trace.TraceContext`.  A worker request built as a
dict literal with ``"cmd"`` of ``"search"`` or ``"encode"`` that lacks
a ``"trace_ctx"`` key severs the cross-process trace: the worker
answers, but its subtree never existed, so the stitched ``serve.topk``
tree silently under-attributes that shard (the coordinator-side gap is
indistinguishable from IPC wait).  The key must be *present* even when
tracing is off — dispatchers ship ``None`` rather than dropping the
key, which keeps on/off wire shapes identical.  R010 also mirrors
R008's discarded-token check for ``capture_context(...)`` /
``Trace.context(...)`` results: a context token that is built and
dropped means someone intended to propagate and forgot.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..registry import register
from ..violations import Violation

__all__ = ["check_span_context_managers", "check_trace_context_propagation"]

#: Call names (plain or attribute) that produce span/trace context objects.
_SPAN_LIKE = {"span", "trace", "trace_span", "handoff"}


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


@register(
    "R008",
    title="span/trace objects must be context-managed",
    rationale=(
        "a span(...)/trace(...)/trace_span(...)/handoff() result that is "
        "neither entered via `with` nor stored records nothing — the "
        "timing lives in __enter__/__exit__ — so a discarded call is a "
        "silent observability bug; direct __enter__ calls leak open spans"
    ),
)
def check_span_context_managers(ctx: FileContext) -> Iterator[Violation]:
    """Flag discarded span-like calls and direct ``__enter__`` invocations."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            name = _call_name(node.value)
            if name in _SPAN_LIKE:
                yield Violation(
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="R008",
                    message=(
                        f"result of `{name}(...)` is discarded; enter it with "
                        "`with` (or store the token) so the span is recorded"
                    ),
                )
        elif isinstance(node, ast.Call) and _call_name(node) == "__enter__":
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R008",
                message=(
                    "direct `__enter__()` call bypasses the guaranteed "
                    "`__exit__`; use a `with` block"
                ),
            )


#: Worker commands whose request dicts must carry the trace context.
_DISPATCH_CMDS = {"search", "encode"}

#: Call names that mint a TraceContext token meant to be propagated.
_CONTEXT_LIKE = {"capture_context", "context", "to_wire"}


def _const_str(node: ast.expr) -> str:
    """The string value of a constant-str AST node, else ``""``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ""


def _dict_keys(node: ast.Dict) -> set:
    """Constant string keys of a dict literal (``**spread`` keys are None)."""
    return {_const_str(key) for key in node.keys if key is not None}


def _is_dispatch_dict(node: ast.Dict) -> bool:
    """True when the literal is a worker request: ``{"cmd": "search"|"encode"}``."""
    for key, value in zip(node.keys, node.values):
        if key is not None and _const_str(key) == "cmd":
            return _const_str(value) in _DISPATCH_CMDS
    return False


@register(
    "R010",
    title="shard dispatch sites must propagate a TraceContext",
    rationale=(
        "a worker request dict with cmd=search/encode but no trace_ctx key "
        "severs the cross-process trace — the shard's subtree is silently "
        "never stitched, so the serve.topk tree under-attributes that shard; "
        "ship trace_ctx=None rather than dropping the key, and never mint a "
        "context token (capture_context/.context()/.to_wire()) just to "
        "discard it"
    ),
)
def check_trace_context_propagation(ctx: FileContext) -> Iterator[Violation]:
    """Flag dispatch dicts missing ``trace_ctx`` and dropped context tokens."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Dict):
            if _is_dispatch_dict(node) and "trace_ctx" not in _dict_keys(node):
                yield Violation(
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="R010",
                    message=(
                        "worker request dict has cmd=search/encode but no "
                        "`trace_ctx` key; propagate the TraceContext (use "
                        "`trace_ctx=None` when untraced) so the shard's "
                        "subtree can be stitched"
                    ),
                )
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            name = _call_name(node.value)
            if name in _CONTEXT_LIKE:
                yield Violation(
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="R010",
                    message=(
                        f"result of `{name}(...)` is discarded; a trace "
                        "context token exists to be shipped with a request — "
                        "attach it or delete the call"
                    ),
                )
