"""R001 — seeded, threaded RNG only.

Reproducibility of every experiment table rests on all randomness flowing
from explicitly seeded :class:`numpy.random.Generator` objects that are
threaded through function arguments.  Two things break that silently:

- the *legacy global* RNG (``np.random.rand``, ``np.random.seed``,
  ``np.random.shuffle``...), whose hidden state couples unrelated code;
- ``np.random.default_rng()`` called **without** a seed, which produces a
  fresh OS-entropy stream on every call.

Both are flagged.  ``default_rng(seed)``, ``Generator``/bit-generator
construction and ``Generator`` *type annotations* are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext
from ..names import import_aliases, qualified_name
from ..registry import register
from ..violations import Violation

__all__ = ["check_rng"]

#: numpy.random attributes that are legitimate to *call*.
_ALLOWED_CALLS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
    "numpy.random.BitGenerator",
}


@register(
    "R001",
    title="no global or unseeded numpy RNG",
    rationale=(
        "all randomness must flow from seeded default_rng/Generator objects "
        "threaded through arguments, or experiments stop being reproducible"
    ),
)
def check_rng(ctx: FileContext) -> Iterator[Violation]:
    """Flag legacy ``np.random.*`` calls and unseeded ``default_rng()``."""
    aliases = import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = qualified_name(node.func, aliases)
        if qual is None or not qual.startswith("numpy.random."):
            continue
        if qual not in _ALLOWED_CALLS:
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R001",
                message=(
                    f"call to legacy global RNG `{qual}`; use a seeded "
                    "`np.random.default_rng(seed)` Generator threaded through "
                    "arguments instead"
                ),
            )
        elif qual == "numpy.random.default_rng" and not node.args and not node.keywords:
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R001",
                message=(
                    "`default_rng()` without a seed draws OS entropy and is "
                    "not reproducible; pass an explicit seed or thread an "
                    "existing Generator through"
                ),
            )
