"""E001–E006: exception-flow discipline over the may-raise model.

These rules run on the :class:`~repro.analysis.exceptions.ExceptionModel`
built over the project dataflow index (see that module for the escape
computation they share):

- **E001** — a function annotated ``# contract: never-raises`` has a
  non-empty escaping-exception set; the finding message carries the full
  propagation chain (callee path plus the originating raise site);
- **E002** — an ``except`` clause broader than what the guarded body can
  raise: bare ``except:``/``except BaseException`` without a re-raise
  (swallows ``KeyboardInterrupt``/``SystemExit``), or a narrow handler
  for an exception the fully-resolved body provably never raises
  (warning);
- **E003** — swallowed exception: a broad handler whose body neither
  re-raises, returns a sentinel, nor records the failure through the obs
  logger (warning — the blast-radius bugs the fault suite hunts
  dynamically, caught at lint time);
- **E004** — ``raise`` inside ``finally`` or inside ``__exit__``
  cleanup, masking the in-flight exception;
- **E005** — an exception constructed but never raised
  (``ValueError(...)`` as a bare statement);
- **E006** — a lock ``.acquire()`` whose matching ``.release()`` is not
  exception-safe (not in a ``finally``): one raise in between leaks the
  lock.  Joins the :class:`~repro.analysis.concurrency.ConcurrencyModel`
  lock tables so E and C findings name the same lock ids.

``# lint: allow(Exxx)`` suppresses a finding inline; the lock-shim
module (:data:`~repro.analysis.concurrency.LOCK_IMPL_MODULES`) is exempt
from E006 because raw acquire/release *is* its job.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..concurrency import LOCK_IMPL_MODULES, build_model
from ..dataflow import ProjectDataflow, _dotted
from ..engine import ProjectContext
from ..exceptions import EFunc, build_exception_model
from ..registry import register
from ..violations import Violation

__all__ = [
    "check_never_raises_contracts",
    "check_overbroad_handlers",
    "check_swallowed_exceptions",
    "check_raise_in_cleanup",
    "check_unraised_exceptions",
    "check_unsafe_lock_release",
]


def _violation(
    path: str, node: ast.AST, rule: str, message: str, severity: str = "error"
) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
        severity=severity,
    )


def _handler_label(names: Optional[List[str]]) -> str:
    if names is None:
        return "bare except:"
    return "except " + ("(" + ", ".join(names) + ")" if len(names) > 1 else names[0])


@register(
    "E001",
    title="never-raises contract violated: an exception can escape",
    rationale=(
        "The serving tier promises callers a degraded answer, never an "
        "exception; any raise reachable from a contracted function voids "
        "that silently.  Narrow the escape path or catch it at the root."
    ),
    scope="dataflow",
)
def check_never_raises_contracts(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag every exception escaping a ``# contract: never-raises`` function."""
    model = build_exception_model(flow)
    for fn in model.contracts:
        for esc in sorted(
            model.escapes.get(fn.key, ()),
            key=lambda e: (e.origin_module, e.origin_line, e.exc),
        ):
            chain = " -> ".join(esc.chain) if esc.chain else fn.qualname
            yield _violation(
                esc.origin_module,
                _Site(esc.origin_line),
                "E001",
                f"`{fn.qualname}` ({fn.module_rel}:{fn.node.lineno}) is marked "
                f"'# contract: never-raises' but {esc.exc} can escape via "
                f"{chain}; origin: {esc.origin_desc} at "
                f"{esc.origin_module}:{esc.origin_line}",
            )


class _Site:
    """Minimal node stand-in carrying a line for :func:`_violation`."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


@register(
    "E002",
    title="except clause broader than what the body can raise",
    rationale=(
        "A bare/BaseException catch swallows KeyboardInterrupt and "
        "SystemExit; a handler for an exception the body cannot raise is "
        "dead code that hides the author's real intent.  Narrow the "
        "clause, or justify a fault-isolation boundary with an inline "
        "allow."
    ),
    scope="dataflow",
    severity="warning",
)
def check_overbroad_handlers(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag bare/BaseException catches and provably-dead narrow handlers."""
    model = build_exception_model(flow)
    for fact in model.handler_facts:
        if fact.is_base_or_bare:
            if fact.reraises:
                continue
            yield _violation(
                fact.fn.module_rel,
                fact.handler,
                "E002",
                f"{_handler_label(fact.names)} in `{fact.fn.qualname}` catches "
                "BaseException (KeyboardInterrupt/SystemExit included) and "
                "does not re-raise; narrow it to Exception or justify the "
                "fault-isolation boundary with an inline allow",
                severity="warning",
            )
            continue
        if fact.is_broad or fact.names is None:
            continue  # `except Exception` is a legitimate backstop
        if fact.body_external:
            continue  # body calls code the model cannot see: no dead claim
        if any(not model.known_exception_class(n) for n in fact.names):
            continue
        caught = {
            n
            for n in fact.reaching
            if any(model.is_exception_subclass(n, h) for h in fact.names)
        }
        if not caught:
            body = sorted(fact.reaching) or ["nothing"]
            yield _violation(
                fact.fn.module_rel,
                fact.handler,
                "E002",
                f"{_handler_label(fact.names)} in `{fact.fn.qualname}` is dead: "
                f"the fully-resolved try body can only raise "
                f"{{{', '.join(body)}}}",
                severity="warning",
            )


@register(
    "E003",
    title="swallowed exception: handler neither re-raises, logs, nor returns a sentinel",
    rationale=(
        "A broad handler that silently eats the exception turns faults "
        "into wrong answers with no trace — the exact blast-radius bug "
        "class the serve fault suite exists for.  Record the failure "
        "through the obs logger, re-raise, or return an explicit "
        "sentinel."
    ),
    scope="dataflow",
    severity="warning",
)
def check_swallowed_exceptions(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag broad handlers that discard the exception without a record."""
    model = build_exception_model(flow)
    for fact in model.handler_facts:
        if not fact.is_broad:
            continue
        if fact.reraises or fact.logs:
            continue
        if (
            not fact.is_base_or_bare
            and fact.sentinel_return
            and not fact.computed_return
        ):
            # `except Exception: return None`-style explicit sentinel.
            continue
        yield _violation(
            fact.fn.module_rel,
            fact.handler,
            "E003",
            f"{_handler_label(fact.names)} in `{fact.fn.qualname}` swallows "
            "the exception: add an obs logger call with the exception type, "
            "re-raise, or return an explicit sentinel",
            severity="warning",
        )


@register(
    "E004",
    title="raise inside finally/__exit__ masks the in-flight exception",
    rationale=(
        "An exception raised during cleanup replaces whatever was "
        "propagating, so the original fault is lost exactly when it "
        "matters; cleanup paths must be non-raising."
    ),
    scope="dataflow",
)
def check_raise_in_cleanup(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag raise statements lexically inside finally blocks and __exit__."""
    model = build_exception_model(flow)
    seen: Set[Tuple[str, int]] = set()
    for site in model.finally_raises:
        key = (site.fn.module_rel, site.node.lineno)
        if key in seen:
            continue
        seen.add(key)
        yield _violation(
            site.fn.module_rel,
            site.node,
            "E004",
            f"raise inside finally in `{site.fn.qualname}` masks any "
            "in-flight exception; move it out of the cleanup path",
        )
    for fn in model.functions.values():
        if fn.name not in ("__exit__", "__aexit__"):
            continue
        for node in _raises_in(fn.node):
            if node.exc is None:
                continue  # bare re-raise inside a handler is fine
            key = (fn.module_rel, node.lineno)
            if key in seen:
                continue
            seen.add(key)
            yield _violation(
                fn.module_rel,
                node,
                "E004",
                f"raise inside `{fn.qualname}` context-manager cleanup "
                "masks the exception the with-body is propagating",
            )


def _raises_in(node: ast.AST) -> Iterator[ast.Raise]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(child, ast.Raise):
            yield child
        yield from _raises_in(child)


@register(
    "E005",
    title="exception constructed but never raised",
    rationale=(
        "`ValueError(...)` as a bare statement allocates the exception "
        "and throws it away — almost always a forgotten `raise`."
    ),
    scope="dataflow",
)
def check_unraised_exceptions(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag bare-statement constructions of exception classes."""
    model = build_exception_model(flow)
    for site in model.unraised_constructions:
        yield _violation(
            site.fn.module_rel,
            site.node,
            "E005",
            f"in `{site.fn.qualname}`: {site.detail} — did you forget "
            "`raise`?",
        )


@register(
    "E006",
    title="lock acquire without an exception-safe release",
    rationale=(
        "A raise between manual .acquire() and .release() leaks the lock "
        "and deadlocks every later taker; release in a finally, or use "
        "`with`.  (The C-family guarded-region analysis only credits "
        "`with` blocks, so this is also invisible to C001.)"
    ),
    scope="dataflow",
)
def check_unsafe_lock_release(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag manual lock acquisitions whose release is not in a finally."""
    exc_model = build_exception_model(flow)
    lock_model = build_model(flow)

    for fn in exc_model.functions.values():
        if fn.module_rel.endswith(LOCK_IMPL_MODULES):
            continue
        acquires: List[Tuple[ast.Call, str, Optional[str]]] = []
        safe_receivers: Set[str] = set()

        def resolve_lock(receiver: ast.AST) -> Optional[str]:
            # self.<attr> -> class lock table; bare name -> module /
            # imported lock tables (the ConcurrencyModel's ids).
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and fn.cinfo is not None
            ):
                ld = lock_model.class_locks.get(fn.cinfo.key, {}).get(receiver.attr)
                return ld.lock_id if ld is not None else None
            if isinstance(receiver, ast.Name):
                rel = fn.module_rel
                ld = lock_model.module_locks.get(rel, {}).get(
                    receiver.id
                ) or lock_model.imported_locks.get(rel, {}).get(receiver.id)
                return ld.lock_id if ld is not None else None
            return None

        def scan(node: ast.AST, in_finally: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in ("acquire", "release")
                ):
                    text = _dotted(child.func.value)
                    if text is not None:
                        if child.func.attr == "acquire":
                            acquires.append(
                                (child, text, resolve_lock(child.func.value))
                            )
                        elif in_finally:
                            safe_receivers.add(text)
                if isinstance(child, ast.Try):
                    for part in (child.body, child.handlers, child.orelse):
                        for sub in part:
                            scan(sub, in_finally)
                    for sub in child.finalbody:
                        scan(sub, True)
                        if (
                            isinstance(sub, ast.Expr)
                            and isinstance(sub.value, ast.Call)
                            and isinstance(sub.value.func, ast.Attribute)
                            and sub.value.func.attr == "release"
                        ):
                            text = _dotted(sub.value.func.value)
                            if text is not None:
                                safe_receivers.add(text)
                else:
                    scan(child, in_finally)

        scan(fn.node, False)
        for call, text, lock_id in acquires:
            if text in safe_receivers:
                continue
            if lock_id is None:
                continue  # not a lock the concurrency model knows
            yield _violation(
                fn.module_rel,
                call,
                "E006",
                f"`{text}.acquire()` in `{fn.qualname}` has no release in a "
                f"finally: a raise in between leaks lock {lock_id} "
                "(cross-ref: the C-family tracks this lock's guarded "
                "regions); use `with` or release in a finally",
            )
