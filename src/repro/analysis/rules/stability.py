"""N001–N004 — numerical-stability rules for the training math.

The reproduction's losses and attention kernels run through ``exp``,
``log``, ``sqrt`` and normalising divisions — exactly the primitives that
overflow, return NaN, or blow up gradients when fed unguarded input.  Each
rule encodes one guard idiom the codebase already uses, so a site is clean
when it follows the established pattern and flagged when it forgot:

- **N001** ``exp`` on unbounded input: safe after max-subtraction (the
  softmax idiom), an explicit clip, or when the argument is provably
  non-positive (e.g. ``-np.abs(x)``, ``-dist`` for a distance).
- **N002** ``log``/``sqrt`` without an epsilon guard: safe with ``+ eps``,
  ``np.maximum(x, c)`` with positive ``c``, a positive-low clip, or (for
  ``sqrt``) a provably non-negative argument such as a sum of squares.
- **N003** division by a computed sum/norm: safe with ``+ eps``,
  ``np.maximum``, or the ``np.where(d == 0, 1, d)`` fallback idiom.
- **N004** float equality on tensor data: ``==`` against ``.data`` or a
  non-zero float constant is almost always a masked epsilon comparison
  (``== 0.0`` sentinel guards are exempt).

The analysis is a per-function, flow-insensitive taint pass over local
assignments: names bound to ``.max(...)`` results count as max-subtraction
material, names bound to sums/norms taint the denominators they feed, and
the ``np.where`` guard idioms launder the taint away.  It is deliberately
conservative in the *safe* direction for recognised idioms and noisy
otherwise — an intentional unguarded site carries a one-line
``# lint: allow(Nxxx)`` justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set

from ..engine import FileContext
from ..registry import register
from ..violations import Violation

__all__ = [
    "check_unguarded_exp",
    "check_unguarded_log_sqrt",
    "check_unguarded_division",
    "check_float_equality",
]

#: Largest constant accepted as an epsilon (guards use 1e-12 ... 1e-2).
_EPS_MAX = 1e-2


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_np_call(node: ast.AST, *names: str) -> bool:
    """Whether ``node`` is ``np.<name>(...)`` (or ``numpy.<name>``)."""
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted is not None and any(
        dotted in (f"np.{n}", f"numpy.{n}") for n in names
    )


def _is_method_call(node: ast.AST, *names: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in names
    )


def _is_eps_like(node: ast.AST) -> bool:
    """A name/attribute containing "eps" or a small positive constant."""
    if isinstance(node, ast.Name):
        return "eps" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "eps" in node.attr.lower()
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return 0.0 < node.value <= _EPS_MAX
    return False


def _is_positive_const(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value > 0
    )


def _is_neg_inf(node: ast.AST) -> bool:
    """``-np.inf`` — the masked-softmax sentinel, a safe exp argument."""
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and _dotted(node.operand) in ("np.inf", "numpy.inf")
    )


@dataclass
class _Env:
    """Flow-insensitive taint facts about one function's locals."""

    max_like: Set[str] = field(default_factory=set)  #: bound to .max(...)
    max_subtracted: Set[str] = field(default_factory=set)  #: x - x.max()
    nonneg: Set[str] = field(default_factory=set)  #: provably >= 0
    sum_tainted: Set[str] = field(default_factory=set)  #: sums/norms
    guarded: Set[str] = field(default_factory=set)  #: laundered denominators


def _is_max_call(node: ast.AST) -> bool:
    return _is_method_call(node, "max", "amax") or _is_np_call(node, "max", "amax")


def _is_sum_call(node: ast.AST, env: _Env) -> bool:
    """A sum/mean/std/norm expression — the N003 denominator taint."""
    if isinstance(node, ast.Name):
        return node.id in env.sum_tainted
    if _is_method_call(node, "sum", "mean", "std"):
        return True
    if _is_np_call(node, "sum", "mean", "std"):
        return True
    if isinstance(node, ast.Call) and _dotted(node.func) in (
        "np.linalg.norm",
        "numpy.linalg.norm",
    ):
        return True
    if _is_np_call(node, "sqrt") and node.args:
        return _is_sum_call(node.args[0], env)
    return False


def _is_where_guard(node: ast.AST) -> bool:
    """``np.where(d == 0, 1, d)`` / ``np.where(d < eps, 1, d)`` laundering."""
    if not _is_np_call(node, "where") or len(node.args) != 3:
        return False
    test = node.args[0]
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], (ast.Eq, ast.Lt, ast.LtE)):
        return False
    threshold = test.comparators[0]
    is_zero = isinstance(threshold, ast.Constant) and threshold.value == 0
    return is_zero or _is_eps_like(threshold)


def _is_finite_passthrough(node: ast.AST, env: _Env) -> bool:
    """``np.where(np.isfinite(m), m, c)`` keeps ``m``'s max-like status."""
    if not _is_np_call(node, "where") or len(node.args) != 3:
        return False
    test, then, _ = node.args
    if not _is_np_call(test, "isfinite"):
        return False
    return isinstance(then, ast.Name) and then.id in env.max_like


def _nonneg(node: ast.AST, env: _Env) -> bool:
    """Provably non-negative expression (squares, abs, sums thereof)."""
    if isinstance(node, ast.Constant):
        return (
            isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value >= 0
        )
    if isinstance(node, ast.Name):
        return node.id in env.nonneg
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Pow):
            exp = node.right
            return (
                isinstance(exp, ast.Constant)
                and isinstance(exp.value, int)
                and exp.value % 2 == 0
            )
        if isinstance(node.op, ast.Mult):
            if ast.dump(node.left) == ast.dump(node.right):
                return True  # x * x
            return _nonneg(node.left, env) and _nonneg(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Div)):
            return _nonneg(node.left, env) and _nonneg(node.right, env)
        return False
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return _nonneg(node.elt, env)
    if isinstance(node, ast.Call):
        if _is_np_call(node, "abs", "square", "exp"):
            return True
        if isinstance(node.func, ast.Name) and node.func.id == "abs":
            return True
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("float", "sum")
            and node.args
        ):
            # float(x) preserves sign; builtin sum of nonneg terms is nonneg.
            return _nonneg(node.args[0], env)
        if _is_np_call(node, "sqrt") and node.args:
            return True  # sqrt output is >= 0 whenever it is finite
        if _is_method_call(node, "sqrt", "exp", "abs"):
            return True
        if _is_method_call(node, "sum", "mean") and isinstance(
            node.func, ast.Attribute
        ):
            return _nonneg(node.func.value, env)
        if _is_np_call(node, "sum", "mean", "take_along_axis") and node.args:
            return _nonneg(node.args[0], env)
        if _is_np_call(node, "maximum") and len(node.args) == 2:
            return any(_nonneg(a, env) for a in node.args)
        return False
    return False


def _nonpositive(node: ast.AST, env: _Env) -> bool:
    if _is_neg_inf(node):
        return True
    if isinstance(node, ast.Constant):
        return (
            isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value <= 0
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _nonneg(node.operand, env)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        for a, b in ((node.left, node.right), (node.right, node.left)):
            if _nonneg(a, env) and _nonpositive(b, env):
                return True
    return False


def _exp_safe(node: ast.AST, env: _Env) -> bool:
    """Whether an ``exp`` argument is bounded above."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name) and node.id in env.max_subtracted:
        return True
    if _nonpositive(node, env):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
        right = node.right
        if _is_max_call(right):
            return True
        if isinstance(right, ast.Name) and right.id in env.max_like:
            return True
    if _is_np_call(node, "clip", "minimum"):
        return True
    if _is_method_call(node, "clip"):
        return True
    if _is_np_call(node, "where") and len(node.args) == 3:
        return _exp_safe(node.args[1], env) and _exp_safe(node.args[2], env)
    return False


def _eps_guarded(node: ast.AST) -> bool:
    """``x + eps`` / ``np.maximum(x, c)`` / positive-low clip idioms."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _is_eps_like(node.left) or _is_eps_like(node.right)
    if _is_np_call(node, "maximum") and len(node.args) == 2:
        return any(
            _is_positive_const(a) or _is_eps_like(a) for a in node.args
        )
    if _is_np_call(node, "clip") and len(node.args) >= 2:
        return _is_positive_const(node.args[1]) or _is_eps_like(node.args[1])
    return False


def _log_safe(node: ast.AST, env: _Env) -> bool:
    return _is_positive_const(node) or _eps_guarded(node)


def _sqrt_safe(node: ast.AST, env: _Env) -> bool:
    return _log_safe(node, env) or _nonneg(node, env)


def _div_guarded(node: ast.AST, env: _Env) -> bool:
    if _eps_guarded(node):
        return True
    if _is_where_guard(node):
        return True
    return isinstance(node, ast.Name) and node.id in env.guarded


def _build_env(scope: ast.AST) -> _Env:
    """Collect taint facts from every assignment in the scope, in order."""
    env = _Env()
    assigns: List[ast.AST] = [
        n
        for n in ast.walk(scope)
        if isinstance(n, (ast.Assign, ast.AugAssign, ast.Expr))
    ]
    assigns.sort(key=lambda n: n.lineno)
    for node in assigns:
        if isinstance(node, ast.Expr):
            # In-place clamp: np.maximum(d2, 0.0, out=d2) makes d2 nonneg.
            call = node.value
            if _is_np_call(call, "maximum", "clip") and any(
                _nonneg(a, env) for a in call.args[1:]
            ):
                for kw in call.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name):
                        env.nonneg.add(kw.value.id)
            continue
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and isinstance(node.op, ast.Add):
                # total += nonneg keeps a nonneg accumulator nonneg.
                if node.target.id in env.nonneg and not _nonneg(node.value, env):
                    env.nonneg.discard(node.target.id)
            continue
        value = node.value
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not names:
            continue
        facts_max = _is_max_call(value) or _is_finite_passthrough(value, env)
        facts_maxsub = (
            isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Sub)
            and (
                _is_max_call(value.right)
                or (
                    isinstance(value.right, ast.Name)
                    and value.right.id in env.max_like
                )
            )
        )
        facts_nonneg = _nonneg(value, env)
        facts_guard = _is_where_guard(value) or _eps_guarded(value)
        facts_sum = _is_sum_call(value, env)
        for name in names:
            for bucket in (
                env.max_like,
                env.max_subtracted,
                env.nonneg,
                env.sum_tainted,
                env.guarded,
            ):
                bucket.discard(name)
            if facts_max:
                env.max_like.add(name)
            if facts_maxsub:
                env.max_subtracted.add(name)
            if facts_nonneg:
                env.nonneg.add(name)
            if facts_guard:
                env.guarded.add(name)
            elif facts_sum:
                env.sum_tainted.add(name)
    return env


def _scopes(ctx: FileContext):
    """(scope AST, nodes to inspect) pairs: each function, then module level.

    A function scope includes its nested closures (backward passes read the
    enclosing op's locals), so the env is built from the whole subtree.
    """
    covered: Set[int] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef) and id(node) not in covered:
            for inner in ast.walk(node):
                if isinstance(inner, ast.FunctionDef):
                    covered.add(id(inner))
            yield node
    # Module-level statements (constants tables etc.).
    module_only = ast.Module(
        body=[n for n in ctx.tree.body if not isinstance(n, (ast.FunctionDef, ast.ClassDef))],
        type_ignores=[],
    )
    yield module_only


def _violation(ctx: FileContext, node: ast.AST, rule: str, message: str) -> Violation:
    return Violation(
        path=ctx.rel,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
    )


@register(
    "N001",
    title="exp on unbounded input needs clip or max-subtraction",
    rationale=(
        "np.exp overflows to inf around x=710; softmax-style kernels must "
        "subtract the row max (or clip) before exponentiating"
    ),
)
def check_unguarded_exp(ctx: FileContext) -> Iterator[Violation]:
    """Flag ``np.exp(x)`` / ``x.exp()`` whose argument is not bounded above."""
    for scope in _scopes(ctx):
        env = _build_env(scope)
        for node in ast.walk(scope):
            if _is_np_call(node, "exp"):
                arg = node.args[0] if node.args else None
            elif _is_method_call(node, "exp") and not node.args:
                arg = node.func.value
            else:
                continue
            if arg is None or _exp_safe(arg, env):
                continue
            yield _violation(
                ctx,
                node,
                "N001",
                "exp of unbounded input: subtract the max (softmax idiom) "
                "or clip before exponentiating",
            )


@register(
    "N002",
    title="log/sqrt need an epsilon guard",
    rationale=(
        "log(0) and the gradient of sqrt at 0 are infinite; add `+ eps` or "
        "np.maximum(x, eps) unless the argument is provably positive"
    ),
)
def check_unguarded_log_sqrt(ctx: FileContext) -> Iterator[Violation]:
    """Flag ``log``/``sqrt`` whose argument has no epsilon guard."""
    for scope in _scopes(ctx):
        env = _build_env(scope)
        for node in ast.walk(scope):
            for fname, safe in (("log", _log_safe), ("sqrt", _sqrt_safe)):
                if _is_np_call(node, fname):
                    arg = node.args[0] if node.args else None
                elif _is_method_call(node, fname) and not node.args:
                    arg = node.func.value
                else:
                    continue
                if arg is None or safe(arg, env):
                    continue
                yield _violation(
                    ctx,
                    node,
                    "N002",
                    f"{fname} without an epsilon guard: use `x + eps` or "
                    "np.maximum(x, eps)",
                )


@register(
    "N003",
    title="division by a computed sum/norm needs an epsilon",
    rationale=(
        "normalising by a sum, mean or norm divides by zero on empty/padded "
        "rows; guard with `+ eps`, np.maximum, or a where-fallback"
    ),
)
def check_unguarded_division(ctx: FileContext) -> Iterator[Violation]:
    """Flag ``a / b`` where ``b`` is a sum/norm without a guard."""
    for scope in _scopes(ctx):
        env = _build_env(scope)
        for node in ast.walk(scope):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
                continue
            denom = node.right
            if not _is_sum_call(denom, env):
                continue
            if _div_guarded(denom, env):
                continue
            yield _violation(
                ctx,
                node,
                "N003",
                "division by a computed sum/norm without an epsilon guard",
            )


@register(
    "N004",
    title="no float equality on tensor data",
    rationale=(
        "== on floating-point tensor payloads is almost never exact; "
        "compare against a tolerance (== 0.0 sentinel guards are exempt)"
    ),
)
def check_float_equality(ctx: FileContext) -> Iterator[Violation]:
    """Flag ``==``/``!=`` against ``.data`` or a non-zero float constant."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        operands = [node.left, node.comparators[0]]
        # `.data` accesses that terminate the chain compare float payloads;
        # deeper chains (`self.data.size`) read int metadata and are exempt.
        inner_attrs = {
            id(sub.value)
            for operand in operands
            for sub in ast.walk(operand)
            if isinstance(sub, ast.Attribute)
        }
        touches_data = any(
            isinstance(sub, ast.Attribute)
            and sub.attr == "data"
            and id(sub) not in inner_attrs
            for operand in operands
            for sub in ast.walk(operand)
        )
        nonzero_float = any(
            isinstance(op, ast.Constant)
            and isinstance(op.value, float)
            and op.value != 0.0
            for op in operands
        )
        if touches_data or nonzero_float:
            yield _violation(
                ctx,
                node,
                "N004",
                "float equality on tensor data: use np.isclose or an "
                "explicit tolerance",
            )
