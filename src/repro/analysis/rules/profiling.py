"""R009 — profiling sessions must be released via ``with`` or ``finally``.

A :class:`~repro.obs.sampler.StackSampler` left running keeps a daemon
thread sampling every frame in the process; a
:class:`~repro.obs.memory.MemoryTracker` (or bare ``tracemalloc.start``)
left enabled roughly doubles allocation cost *globally* until something
stops it.  Unlike a leaked span (R008), a leaked profiling session
corrupts every later measurement in the process — the overhead budget
the sampler promises (≤5%, DESIGN.md §14) only holds when sessions are
bounded.

Flagged:

- ``x.start()`` / ``x.enable()`` where ``x`` was assigned from
  ``StackSampler(...)`` / ``MemoryTracker(...)`` / ``OpProfiler(...)``
  in the same file, unless the call sits inside a ``try`` whose
  ``finally`` calls the matching ``x.stop()`` / ``x.disable()``;
- chained ``StackSampler(...).start()`` (the object is discarded — it
  can never be stopped);
- any bare ``tracemalloc.start(...)`` not covered by a ``finally`` with
  ``tracemalloc.stop()``.

Not flagged: ``with StackSampler(...):`` / ``with MemoryTracker():``
(the context manager is the preferred form), ``enter_context(...)``
registrations, and ``# lint: allow(R009)`` escapes for code that owns a
session across a method boundary (e.g. ``MemoryTracker`` itself).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..engine import FileContext
from ..registry import register
from ..violations import Violation

__all__ = ["check_profiling_sessions"]

#: Classes whose instances own a start/stop (or enable/disable) session.
_SESSION_CLASSES = {"StackSampler", "MemoryTracker", "OpProfiler"}

#: Method pairs: a *start* call is only safe with its *stop* in a finally.
_STARTS = {"start", "enable"}
_STOPS = {"stop", "disable"}


def _callee_class(node: ast.expr) -> Optional[str]:
    """The session class name if ``node`` is a call constructing one."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _SESSION_CLASSES:
            return name
    if isinstance(node, ast.IfExp):
        # ``OpProfiler(...) if flag else None`` and friends.
        return _callee_class(node.body) or _callee_class(node.orelse)
    return None


def _receiver_key(node: ast.expr) -> Optional[str]:
    """A stable name for a call receiver: ``sampler`` or ``self._memory``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _session_vars(tree: ast.AST) -> Dict[str, str]:
    """Map variable/attribute names to the session class assigned to them."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                continue
            cls = _callee_class(value)
            if cls is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                key = _receiver_key(target)
                if key is not None:
                    out[key] = cls
    return out


def _is_tracemalloc_start(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "start"
        and isinstance(func.value, ast.Name)
        and func.value.id == "tracemalloc"
    )


def _start_calls(tree: ast.AST, sessions: Dict[str, str]):
    """Yield ``(call, key)`` for every session-start call in ``tree``.

    ``key`` is the receiver name for tracked variables, the literal
    ``"tracemalloc"`` for module-level sessions, or ``None`` for a
    chained constructor call (unstoppable by construction).
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _STARTS:
            continue
        if _is_tracemalloc_start(node):
            yield node, "tracemalloc"
            continue
        if _callee_class(func.value) is not None:
            yield node, None  # chained Constructor(...).start()
            continue
        key = _receiver_key(func.value)
        if key is not None and key in sessions:
            yield node, key


def _protected_starts(tree: ast.AST, sessions: Dict[str, str]) -> Set[int]:
    """Ids of start-call nodes released by an enclosing try/finally."""
    protected: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        stops: Set[str] = set()
        for final_stmt in node.finalbody:
            for call in ast.walk(final_stmt):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute) or func.attr not in _STOPS:
                    continue
                if (
                    func.attr == "stop"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "tracemalloc"
                ):
                    stops.add("tracemalloc")
                    continue
                key = _receiver_key(func.value)
                if key is not None:
                    stops.add(key)
        if not stops:
            continue
        for body_stmt in node.body:
            for call, key in _start_calls(body_stmt, sessions):
                if key is not None and key in stops:
                    protected.add(id(call))
    return protected


@register(
    "R009",
    title="profiling sessions must be stopped via `with` or `finally`",
    rationale=(
        "a StackSampler/MemoryTracker/OpProfiler (or bare tracemalloc) "
        "session started without a guaranteed stop keeps sampling or "
        "doubling allocation cost for the rest of the process, corrupting "
        "every later measurement; context-manage the session or pair the "
        "start with a stop in a finally block"
    ),
)
def check_profiling_sessions(ctx: FileContext) -> Iterator[Violation]:
    """Flag profiling-session starts with no guaranteed matching stop."""
    sessions = _session_vars(ctx.tree)
    protected = _protected_starts(ctx.tree, sessions)
    seen: Set[Tuple[int, int]] = set()
    for call, key in _start_calls(ctx.tree, sessions):
        if id(call) in protected:
            continue
        where = (call.lineno, call.col_offset)
        if where in seen:
            continue
        seen.add(where)
        if key is None:
            message = (
                "chained `.start()` on a freshly constructed profiling "
                "session discards the object — it can never be stopped; "
                "bind it and use `with`"
            )
        elif key == "tracemalloc":
            message = (
                "`tracemalloc.start(...)` without `tracemalloc.stop()` in a "
                "`finally` leaves heap tracing on for the whole process; "
                "prefer `with MemoryTracker():`"
            )
        else:
            stop = "disable()" if _method_is_enable(call) else "stop()"
            message = (
                f"`{key}.{call.func.attr}()` has no matching `{key}.{stop}` "
                "in a `finally`; use `with` or a try/finally so the session "
                "is always released"
            )
        yield Violation(
            path=ctx.rel,
            line=call.lineno,
            col=call.col_offset,
            rule="R009",
            message=message,
        )


def _method_is_enable(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr == "enable"
