"""D001/D002 — differentiability audit over the reachable forward graph.

Both rules run on the :class:`~repro.analysis.dataflow.ProjectDataflow`
index: starting from every model forward method (``TMN.forward_pair``, the
baseline ``encode_side``s, ...) they walk the call graph and audit only
what training can actually execute.

- **D001**: every tape op (a function whose body calls ``Tensor._make``)
  reachable from a forward root must define a hand-derived backward
  closure *and* be referenced by a gradcheck-bearing test.  A reachable op
  without a backward silently produces zero gradients; one without a
  gradcheck is an unverified derivative on the training path.
- **D002**: no mid-graph detach on a reachable path.  Wrapping ``x.data``
  (or ``x.numpy()``) back into ``Tensor(...)`` / ``np.asarray(...)`` /
  ``np.array(...)`` severs the tape: the forward value is right, the
  gradient is silently zero upstream of the splice.  Code under ``with
  no_grad():`` is exempt (detaching is the point there), as are the
  autograd engine internals, which manipulate ``.data`` by definition.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..dataflow import ProjectDataflow
from ..engine import ProjectContext
from ..registry import register
from ..violations import Violation
from .coverage import covered_ops

__all__ = ["check_backward_coverage", "check_graph_detach"]

#: Modules allowed to touch ``.data`` freely: the autograd engine itself
#: and the fused kernels, whose closures are the gradient implementation.
_ENGINE_MODULES = ("autograd/tensor.py", "autograd/ops.py", "nn/fused.py")


def _is_engine_module(rel: str) -> bool:
    return any(rel.endswith(suffix) for suffix in _ENGINE_MODULES)


@register(
    "D001",
    title="reachable autograd ops need a backward closure and a gradcheck",
    rationale=(
        "an op on the model forward path without a hand-derived backward "
        "yields silent zero gradients; without a finite-difference check "
        "its derivative is unverified"
    ),
    scope="dataflow",
)
def check_backward_coverage(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Audit every tape op the forward graph can reach."""
    reachable = flow.reachable_forward_graph()
    covered: Optional[Set[str]] = None
    if project.tests_dir is not None and project.tests_dir.is_dir():
        covered = covered_ops(project.tests_dir)
    for fi, has_backward in flow.tape_ops():
        if fi.node_id not in reachable:
            continue
        op_name = fi.qualname.split(".")[-1]
        if not has_backward:
            yield Violation(
                path=fi.module_rel,
                line=fi.node.lineno,
                col=fi.node.col_offset,
                rule="D001",
                message=(
                    f"tape op `{fi.qualname}` is reachable from a model "
                    "forward method but defines no backward closure"
                ),
            )
        if covered is not None and op_name not in covered:
            yield Violation(
                path=fi.module_rel,
                line=fi.node.lineno,
                col=fi.node.col_offset,
                rule="D001",
                message=(
                    f"tape op `{fi.qualname}` is reachable from a model "
                    "forward method but no gradcheck-bearing test "
                    "references it"
                ),
            )


def _first_positional(call: ast.Call) -> Optional[ast.AST]:
    """The argument whose value would become the new array/tensor payload.

    Keyword arguments such as ``dtype=self.data.dtype`` legitimately touch
    ``.data`` without splicing it into the graph, so only the first
    positional argument subtree is inspected.
    """
    return call.args[0] if call.args else None


def _detaches(expr: ast.AST) -> bool:
    """Whether the payload expression reads raw array data off a tensor."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "data":
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "numpy"
        ):
            return True
    return False


def _rewrap_target(call: ast.Call) -> Optional[str]:
    """Name of the wrapping constructor when the call re-enters the graph."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "Tensor":
        return "Tensor"
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("asarray", "array")
        and isinstance(func.value, ast.Name)
        and func.value.id == "np"
    ):
        return f"np.{func.attr}"
    return None


def _no_grad_lines(tree: ast.AST) -> Set[int]:
    """Line numbers inside ``with no_grad():`` blocks (detaching intended)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            name = None
            if isinstance(expr, ast.Call):
                if isinstance(expr.func, ast.Name):
                    name = expr.func.id
                elif isinstance(expr.func, ast.Attribute):
                    name = expr.func.attr
            if name == "no_grad":
                end = getattr(node, "end_lineno", node.lineno)
                lines.update(range(node.lineno, end + 1))
    return lines


@register(
    "D002",
    title="no mid-graph .data/.numpy() detach on a reachable forward path",
    rationale=(
        "wrapping raw `.data` back into Tensor/np.asarray severs the tape: "
        "forward values stay correct while upstream gradients silently "
        "become zero"
    ),
    scope="dataflow",
)
def check_graph_detach(
    project: ProjectContext, flow: ProjectDataflow
) -> Iterator[Violation]:
    """Flag Tensor/asarray rewraps of ``.data`` in reachable functions."""
    reachable = flow.reachable_forward_graph()
    for node_id in sorted(reachable):
        fi = flow.functions.get(node_id)
        if fi is None or _is_engine_module(fi.module_rel):
            continue
        exempt_lines = _no_grad_lines(fi.node)
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.Call):
                continue
            wrapper = _rewrap_target(node)
            if wrapper is None or node.lineno in exempt_lines:
                continue
            payload = _first_positional(node)
            if payload is not None and _detaches(payload):
                yield Violation(
                    path=fi.module_rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="D002",
                    message=(
                        f"`{wrapper}(...)` in `{fi.qualname}` rewraps raw "
                        "tensor data on a reachable forward path, "
                        "detaching the gradient"
                    ),
                )
