"""R003 — every differentiable op must be gradcheck-tested.

A hand-derived backward pass that is never compared against finite
differences is a gradient bug waiting to happen (the reproduction's fused
LSTM step exists precisely because composed and fused paths must agree).
This rule statically cross-references the op catalogue against the test
suite: an op counts as covered when some test module both references the
op by name *and* calls ``check_gradients``/``numeric_gradient``.

Op catalogue: public functions of ``repro/autograd/ops.py`` plus the fused
kernels in ``repro/nn/fused.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

from ..engine import FileContext, ProjectContext
from ..registry import register
from ..violations import Violation

__all__ = ["check_gradcheck_coverage", "differentiable_ops", "covered_ops"]

#: Modules (relative to the package root) whose public functions are ops.
_OP_MODULES = ("autograd/ops.py", "nn/fused.py")

#: Names whose presence marks a test as a gradient check.
_GRADCHECK_NAMES = {"check_gradients", "numeric_gradient"}

#: Operators appearing inside a gradcheck-bearing test exercise the Tensor
#: dunder that implements them, so D001 can credit `a - b` to `__sub__`.
_OPERATOR_DUNDERS = {
    ast.Add: "__add__",
    ast.Sub: "__sub__",
    ast.Mult: "__mul__",
    ast.Div: "__truediv__",
    ast.MatMult: "__matmul__",
    ast.Pow: "__pow__",
}


def differentiable_ops(project: ProjectContext) -> List[Tuple[FileContext, str, int]]:
    """(file, op name, def line) for every public op in the catalogue modules."""
    ops: List[Tuple[FileContext, str, int]] = []
    for ctx in project.files:
        if not any(ctx.rel.endswith(suffix) for suffix in _OP_MODULES):
            continue
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
                ops.append((ctx, node.name, node.lineno))
    return ops


def _functions(tree: ast.Module):
    """Top-level test functions plus methods of test classes."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield item


def covered_ops(tests_dir: Path) -> Set[str]:
    """Names referenced *inside a test function* that also runs a gradcheck.

    Granularity is per function, not per file: an op with only a
    forward-value test in a file that happens to gradcheck other ops does
    not count as covered.
    """
    covered: Set[str] = set()
    for path in sorted(tests_dir.glob("test_*.py")):
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError:
            continue
        for func in _functions(tree):
            referenced: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)
                elif isinstance(node, ast.Attribute):
                    referenced.add(node.attr)
                elif isinstance(node, ast.BinOp):
                    dunder = _OPERATOR_DUNDERS.get(type(node.op))
                    if dunder is not None:
                        referenced.add(dunder)
                elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
                    referenced.add("__neg__")
                elif isinstance(node, ast.Subscript):
                    referenced.add("__getitem__")
            if referenced & _GRADCHECK_NAMES:
                covered |= referenced
    return covered


@register(
    "R003",
    title="differentiable ops require a gradcheck test",
    rationale=(
        "hand-derived backward passes are only trustworthy when validated "
        "against central finite differences in the test suite"
    ),
    scope="project",
)
def check_gradcheck_coverage(project: ProjectContext) -> Iterator[Violation]:
    """Flag ops in the catalogue that no gradcheck-bearing test references."""
    if project.tests_dir is None or not project.tests_dir.is_dir():
        return
    ops = differentiable_ops(project)
    if not ops:
        return
    covered = covered_ops(project.tests_dir)
    for ctx, name, lineno in ops:
        if name not in covered:
            yield Violation(
                path=ctx.rel,
                line=lineno,
                col=0,
                rule="R003",
                message=(
                    f"differentiable op `{name}` has no gradcheck coverage: "
                    "no test module references it alongside "
                    "check_gradients/numeric_gradient"
                ),
            )
