"""R005/R006 — public-API surface hygiene.

R005 keeps ``__all__`` truthful in both directions: every public top-level
``def``/``class`` must be exported, and every exported name must actually
be bound in the module.  A stale ``__all__`` makes ``from repro.x import
*`` and the API docs lie, and hides accidental API growth from review.

R006 requires a docstring on every public function, class and method —
the reproduction's modules double as the documentation of which paper
equation each piece implements.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..engine import FileContext
from ..registry import register
from ..violations import Violation

__all__ = ["check_all_consistency", "check_docstrings", "declared_all", "public_surface"]


def declared_all(tree: ast.Module) -> Optional[List[str]]:
    """The literal ``__all__`` list of a module, or None when absent."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.target is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                try:
                    value = ast.literal_eval(node.value)
                except (ValueError, TypeError):
                    return None
                return [str(v) for v in value]
    return None


def public_surface(tree: ast.Module) -> List[ast.stmt]:
    """Top-level public ``def``/``class`` statements of a module."""
    return [
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and not node.name.startswith("_")
    ]


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, imports, assigns)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for item in node.names:
                bound.add((item.asname or item.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for item in node.names:
                if item.name != "*":
                    bound.add(item.asname or item.name)
    return bound


def _is_script(ctx: FileContext) -> bool:
    return ctx.rel.endswith("__main__.py")


@register(
    "R005",
    title="__all__ must match the public surface",
    rationale=(
        "a stale __all__ makes star-imports and API docs lie and lets "
        "accidental API growth slip past review"
    ),
)
def check_all_consistency(ctx: FileContext) -> Iterator[Violation]:
    """Flag missing ``__all__``, unexported public defs and phantom exports."""
    if _is_script(ctx):
        return
    exported = declared_all(ctx.tree)
    if exported is None:
        yield Violation(
            path=ctx.rel,
            line=1,
            col=0,
            rule="R005",
            message="module has no literal __all__; declare its public surface",
        )
        return
    for node in public_surface(ctx.tree):
        if node.name not in exported:
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="R005",
                message=f"public `{node.name}` is not listed in __all__",
            )
    bound = _bound_names(ctx.tree)
    for name in exported:
        if name not in bound and name != "__version__":
            yield Violation(
                path=ctx.rel,
                line=1,
                col=0,
                rule="R005",
                message=f"__all__ exports `{name}` but the module never binds it",
            )


@register(
    "R006",
    title="public functions, classes and methods need docstrings",
    rationale=(
        "the modules double as the map from code to paper equations; an "
        "undocumented public symbol breaks that map"
    ),
)
def check_docstrings(ctx: FileContext) -> Iterator[Violation]:
    """Flag public defs/classes/methods without a docstring."""
    if _is_script(ctx):
        return

    def visit(body, in_class: bool) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    kind = "class" if isinstance(node, ast.ClassDef) else (
                        "method" if in_class else "function"
                    )
                    yield Violation(
                        path=ctx.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="R006",
                        message=f"public {kind} `{node.name}` lacks a docstring",
                    )
                if isinstance(node, ast.ClassDef):
                    yield from visit(node.body, in_class=True)

    yield from visit(ctx.tree.body, in_class=False)
