"""Cross-module dataflow layer: symbol resolution, call graph, reachability.

The per-file rules (R001...R007) and the per-class shape checker (S001)
cannot answer *whole-project* questions: "is this autograd op actually on a
training forward path?", "does this helper, three imports away, detach the
gradient?".  This module builds the project-level structures those
questions need:

- a **symbol table** per module (functions, classes, import aliases) with
  relative imports and package re-export chains resolved;
- a **class hierarchy** with an approximate MRO, so methods inherited from
  a base class in another file are visible on the subclass;
- a **call graph** over every function and method, including edges through
  ``self.<attr>`` layer calls (attribute types are inferred from
  ``__init__`` bodies and simple factory-function returns), through
  :class:`~repro.autograd.tensor.Tensor` method calls, and through the
  operator dunders (``a + b`` adds an edge to ``Tensor.__add__``);
- **reachability** from the model forward methods (``forward``,
  ``forward_pair``, ``encode_side``...), which defines "the training
  graph" the D-rules audit;
- the **tape-op catalogue**: every function/method that creates a tape
  node via ``Tensor._make``, together with whether it defines a backward
  closure.

Everything is conservative over-approximation: an edge that might exist is
assumed to exist, so "reachable" never misses a real forward path.  The
rules built on top (see :mod:`repro.analysis.rules.differentiability`)
therefore never silently skip an op that training actually uses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .engine import FileContext, ProjectContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectDataflow",
    "SymbolRef",
    "TENSOR_OP_METHODS",
    "FORWARD_ROOT_METHODS",
    "OPERATOR_METHODS",
]

#: Method names treated as model forward paths (call-graph roots).
FORWARD_ROOT_METHODS = (
    "forward",
    "forward_pair",
    "encode_side",
    "step_features",
    "embed_points",
)

#: Tensor methods that build tape nodes; an attribute call with one of
#: these names is assumed to hit the autograd engine (conservative).
TENSOR_OP_METHODS = frozenset(
    {
        "exp",
        "log",
        "sqrt",
        "tanh",
        "sigmoid",
        "relu",
        "leaky_relu",
        "abs",
        "sum",
        "mean",
        "max",
        "reshape",
        "transpose",
        "swapaxes",
        "expand_dims",
        "squeeze",
        "broadcast_to",
    }
)

#: AST operator type -> Tensor dunder implementing it.
OPERATOR_METHODS = {
    ast.Add: "__add__",
    ast.Sub: "__sub__",
    ast.Mult: "__mul__",
    ast.Div: "__truediv__",
    ast.MatMult: "__matmul__",
    ast.Pow: "__pow__",
}

#: Maximum re-export chain length followed through package __init__ files.
_MAX_REEXPORT_DEPTH = 6


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted source text of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@dataclass(frozen=True)
class SymbolRef:
    """A resolved project symbol: where it lives and what kind it is."""

    kind: str  #: "function" | "class"
    module_rel: str  #: report-relative path of the defining file
    name: str  #: symbol name inside that module


@dataclass
class FunctionInfo:
    """One function or method with its defining location."""

    node: ast.FunctionDef
    module_rel: str
    qualname: str  #: "func" or "Class.func"

    @property
    def node_id(self) -> str:
        """Call-graph node identifier, ``<module_rel>::<qualname>``."""
        return f"{self.module_rel}::{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition plus its resolved bases."""

    node: ast.ClassDef
    module_rel: str
    name: str
    base_refs: List[SymbolRef] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Unique id for hierarchy bookkeeping."""
        return f"{self.module_rel}::{self.name}"


@dataclass
class ModuleInfo:
    """Parsed symbol table for one module."""

    ctx: FileContext
    modname: str  #: dotted module name, e.g. ``repro.nn.attention``
    is_package: bool
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local name -> dotted target ("repro.autograd.Tensor" style)
    imports: Dict[str, str] = field(default_factory=dict)


def _module_name(rel: str) -> Tuple[str, bool]:
    """Dotted module name for a report-relative path, plus package-ness.

    ``src/repro/nn/attention.py`` -> ``("repro.nn.attention", False)``;
    ``src/repro/nn/__init__.py`` -> ``("repro.nn", True)``.  A leading
    ``src/`` component is dropped so the dotted names match import sites.
    """
    parts = rel.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if not parts:
        return rel, False
    last = parts[-1]
    if last == "__init__.py":
        return ".".join(parts[:-1]), True
    if last.endswith(".py"):
        parts[-1] = last[: -len(".py")]
    return ".".join(parts), False


class ProjectDataflow:
    """Whole-project symbol, hierarchy and call-graph index.

    Build once per lint run with :meth:`build`; rules query it read-only.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  #: keyed by rel path
        self.by_modname: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}  #: keyed by node id
        self.edges: Dict[str, Set[str]] = {}
        self.tensor_class: Optional[ClassInfo] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: ProjectContext) -> "ProjectDataflow":
        """Index every parsed file of the project and build the call graph."""
        flow = cls()
        for ctx in project.files:
            flow._index_module(ctx)
        flow._locate_tensor_class()
        for info in flow.modules.values():
            flow._collect_functions(info)
        for fn in list(flow.functions.values()):
            flow.edges[fn.node_id] = flow._edges_of(fn)
        return flow

    def _index_module(self, ctx: FileContext) -> None:
        modname, is_package = _module_name(ctx.rel)
        info = ModuleInfo(ctx=ctx, modname=modname, is_package=is_package)
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef):
                info.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                cinfo = ClassInfo(node=node, module_rel=ctx.rel, name=node.name)
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        cinfo.methods[item.name] = item
                info.classes[node.name] = cinfo
        info.imports = self._module_imports(info)
        self.modules[ctx.rel] = info
        self.by_modname[modname] = info

    def _module_imports(self, info: ModuleInfo) -> Dict[str, str]:
        """Local name -> dotted target, with relative imports made absolute."""
        imports: Dict[str, str] = {}
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    imports[local] = item.name if item.asname else item.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = info.modname.split(".") if info.modname else []
                    # For a plain module, level 1 is the containing package;
                    # for a package __init__, level 1 is the package itself.
                    drop = node.level if not info.is_package else node.level - 1
                    anchor = parts[: len(parts) - drop] if drop else parts
                    base = ".".join(anchor + ([base] if base else []))
                for item in node.names:
                    if item.name == "*":
                        continue
                    imports[item.asname or item.name] = (
                        f"{base}.{item.name}" if base else item.name
                    )
        return imports

    def _locate_tensor_class(self) -> None:
        """Find the project's Tensor class (autograd engine), if present."""
        best: Optional[ClassInfo] = None
        for info in self.modules.values():
            cinfo = info.classes.get("Tensor")
            if cinfo is None:
                continue
            # Prefer the definition inside an autograd package over re-uses.
            if best is None or "autograd" in info.modname:
                best = cinfo
        self.tensor_class = best

    def _collect_functions(self, info: ModuleInfo) -> None:
        for name, node in info.functions.items():
            fi = FunctionInfo(node=node, module_rel=info.ctx.rel, qualname=name)
            self.functions[fi.node_id] = fi
        for cname, cinfo in info.classes.items():
            cinfo.base_refs = [
                ref
                for ref in (self._resolve_base(info, b) for b in cinfo.node.bases)
                if ref is not None
            ]
            for mname, mnode in cinfo.methods.items():
                fi = FunctionInfo(
                    node=mnode, module_rel=info.ctx.rel, qualname=f"{cname}.{mname}"
                )
                self.functions[fi.node_id] = fi

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def _resolve_base(self, info: ModuleInfo, node: ast.AST) -> Optional[SymbolRef]:
        dotted = _dotted(node)
        if dotted is None:
            return None
        return self.resolve(info, dotted)

    def resolve(self, info: ModuleInfo, dotted: str, _depth: int = 0) -> Optional[SymbolRef]:
        """Resolve a dotted name used in ``info`` to a project symbol.

        Follows import aliases, then package ``__init__`` re-export chains
        (``from .tensor import Tensor``) up to a fixed depth.  Returns None
        for anything that leaves the project (numpy, stdlib, ...).
        """
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        head, _, rest = dotted.partition(".")
        # Local definition wins over imports (shadowing).
        if not rest:
            if head in info.functions:
                return SymbolRef("function", info.ctx.rel, head)
            if head in info.classes:
                return SymbolRef("class", info.ctx.rel, head)
        target = info.imports.get(head)
        if target is None:
            if rest:
                # "module.attr" where module itself is a project module
                # referenced by its dotted name is rare; give up.
                return None
            return None
        full = f"{target}.{rest}" if rest else target
        return self._resolve_absolute(full, _depth)

    def _resolve_absolute(self, dotted: str, _depth: int) -> Optional[SymbolRef]:
        """Resolve an absolute dotted path against the module table."""
        # Longest-prefix match: find the module, the remainder is the symbol.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            modname = ".".join(parts[:cut])
            info = self.by_modname.get(modname)
            if info is None:
                continue
            remainder = parts[cut:]
            if not remainder:
                return None  # a module itself, not a symbol
            symbol = remainder[0]
            if symbol in info.functions:
                return SymbolRef("function", info.ctx.rel, symbol)
            if symbol in info.classes:
                return SymbolRef("class", info.ctx.rel, symbol)
            # Re-export chain through this module's imports.
            reexport = info.imports.get(symbol)
            if reexport is not None:
                tail = ".".join([reexport] + remainder[1:])
                return self._resolve_absolute(tail, _depth + 1)
            return None
        return None

    def class_info(self, ref: SymbolRef) -> Optional[ClassInfo]:
        """ClassInfo for a resolved class reference."""
        info = self.modules.get(ref.module_rel)
        if info is None:
            return None
        return info.classes.get(ref.name)

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    def mro(self, cinfo: ClassInfo) -> List[ClassInfo]:
        """Approximate MRO: subclass-first depth-first walk, deduplicated."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()

        def visit(c: ClassInfo) -> None:
            if c.key in seen:
                return
            seen.add(c.key)
            out.append(c)
            for ref in c.base_refs:
                base = self.class_info(ref)
                if base is not None:
                    visit(base)

        visit(cinfo)
        return out

    def find_method(self, cinfo: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Look a method up through the MRO; None when absent everywhere."""
        for klass in self.mro(cinfo):
            node = klass.methods.get(name)
            if node is not None:
                return FunctionInfo(
                    node=node,
                    module_rel=klass.module_rel,
                    qualname=f"{klass.name}.{name}",
                )
        return None

    def attr_types(self, cinfo: ClassInfo) -> Dict[str, ClassInfo]:
        """``self.<attr>`` -> instantiated class, inferred from ``__init__``.

        Walks every ``__init__`` in the MRO.  ``self.x = SomeClass(...)``
        binds directly; ``self.x = factory(...)`` binds to every class the
        factory can return (simple ``return SomeClass(...)`` bodies only).
        """
        out: Dict[str, ClassInfo] = {}
        for klass in reversed(self.mro(cinfo)):  # subclass assignments win
            init = klass.methods.get("__init__")
            if init is None:
                continue
            module = self.modules.get(klass.module_rel)
            if module is None:
                continue
            for node in ast.walk(init):
                if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                    continue
                value_classes = self._call_result_classes(module, node.value)
                if not value_classes:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        # Multiple candidates (factory): keep the first but
                        # record all for call-graph edges via _factory_edges.
                        out[target.attr] = value_classes[0]
        return out

    def _call_result_classes(self, module: ModuleInfo, call: ast.Call) -> List[ClassInfo]:
        """Classes a call expression may construct (directly or via factory)."""
        dotted = _dotted(call.func)
        if dotted is None:
            return []
        ref = self.resolve(module, dotted)
        if ref is None:
            return []
        if ref.kind == "class":
            cinfo = self.class_info(ref)
            return [cinfo] if cinfo is not None else []
        # Factory function: collect classes from `return SomeClass(...)`.
        fmod = self.modules.get(ref.module_rel)
        fnode = fmod.functions.get(ref.name) if fmod is not None else None
        if fnode is None:
            return []
        results: List[ClassInfo] = []
        for node in ast.walk(fnode):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                inner = _dotted(node.value.func)
                if inner is None:
                    continue
                iref = self.resolve(fmod, inner)
                if iref is not None and iref.kind == "class":
                    cinfo = self.class_info(iref)
                    if cinfo is not None:
                        results.append(cinfo)
        return results

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _tensor_method_node(self, name: str) -> Optional[str]:
        tc = self.tensor_class
        if tc is None or name not in tc.methods:
            return None
        return f"{tc.module_rel}::Tensor.{name}"

    def _instance_call_nodes(self, cinfo: ClassInfo) -> List[str]:
        """Nodes reached by *calling* an instance of ``cinfo``."""
        nodes = []
        for mname in ("__call__", "forward"):
            fi = self.find_method(cinfo, mname)
            if fi is not None:
                nodes.append(fi.node_id)
        return nodes

    def _edges_of(self, fn: FunctionInfo) -> Set[str]:
        module = self.modules[fn.module_rel]
        class_name = fn.qualname.split(".")[0] if "." in fn.qualname else None
        cinfo = module.classes.get(class_name) if class_name else None
        attr_types = self.attr_types(cinfo) if cinfo is not None else {}

        # Local variables bound to class instances: `layer = Linear(...)`.
        local_types: Dict[str, ClassInfo] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                classes = self._call_result_classes(module, node.value)
                if classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_types[target.id] = classes[0]

        edges: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                edges |= self._call_edges(node, module, cinfo, attr_types, local_types)
            elif isinstance(node, ast.BinOp):
                method = OPERATOR_METHODS.get(type(node.op))
                if method is not None:
                    target = self._tensor_method_node(method)
                    if target is not None:
                        edges.add(target)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
                target = self._tensor_method_node("__neg__")
                if target is not None:
                    edges.add(target)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                target = self._tensor_method_node("__getitem__")
                if target is not None:
                    edges.add(target)
        edges.discard(fn.node_id)
        return edges

    def _call_edges(
        self,
        node: ast.Call,
        module: ModuleInfo,
        cinfo: Optional[ClassInfo],
        attr_types: Dict[str, ClassInfo],
        local_types: Dict[str, ClassInfo],
    ) -> Set[str]:
        edges: Set[str] = set()
        func = node.func

        # self.<attr>(...) — a method or a stored layer instance.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cinfo is not None
        ):
            fi = self.find_method(cinfo, func.attr)
            if fi is not None:
                edges.add(fi.node_id)
                return edges
            attr_class = attr_types.get(func.attr)
            if attr_class is not None:
                edges.update(self._instance_call_nodes(attr_class))
                return edges
            return edges

        # super().__init__(...) and other super() dispatch.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and cinfo is not None
        ):
            for klass in self.mro(cinfo)[1:]:
                mnode = klass.methods.get(func.attr)
                if mnode is not None:
                    edges.add(f"{klass.module_rel}::{klass.name}.{func.attr}")
                    break
            return edges

        # Plain name or dotted call: local var instance, project symbol,
        # or a module-qualified project function.
        dotted = _dotted(func)
        if dotted is not None:
            head = dotted.split(".")[0]
            if "." not in dotted and head in local_types:
                edges.update(self._instance_call_nodes(local_types[head]))
                return edges
            ref = self.resolve(module, dotted)
            if ref is not None:
                if ref.kind == "function":
                    edges.add(f"{ref.module_rel}::{ref.name}")
                else:
                    ccls = self.class_info(ref)
                    if ccls is not None:
                        init = self.find_method(ccls, "__init__")
                        if init is not None:
                            edges.add(init.node_id)
                return edges

        # <expr>.method(...) where the method name is a Tensor op.
        if isinstance(func, ast.Attribute) and func.attr in TENSOR_OP_METHODS:
            target = self._tensor_method_node(func.attr)
            if target is not None:
                edges.add(target)
        return edges

    # ------------------------------------------------------------------
    # Reachability and roots
    # ------------------------------------------------------------------
    def forward_roots(self) -> List[FunctionInfo]:
        """Every method named like a forward path, on any class."""
        roots = []
        for info in self.modules.values():
            for cinfo in info.classes.values():
                for name in FORWARD_ROOT_METHODS:
                    node = cinfo.methods.get(name)
                    if node is not None:
                        roots.append(
                            FunctionInfo(
                                node=node,
                                module_rel=info.ctx.rel,
                                qualname=f"{cinfo.name}.{name}",
                            )
                        )
        return roots

    def reachable_from(self, roots: Sequence[Union[str, FunctionInfo]]) -> Set[str]:
        """Transitive closure of the call graph from the given node ids."""
        frontier = [r.node_id if isinstance(r, FunctionInfo) else r for r in roots]
        seen: Set[str] = set()
        while frontier:
            nid = frontier.pop()
            if nid in seen or nid not in self.functions:
                continue
            seen.add(nid)
            frontier.extend(self.edges.get(nid, ()))
        return seen

    def reachable_forward_graph(self) -> Set[str]:
        """Node ids reachable from any model forward method."""
        return self.reachable_from(self.forward_roots())

    # ------------------------------------------------------------------
    # Tape-op catalogue
    # ------------------------------------------------------------------
    def tape_ops(self) -> List[Tuple[FunctionInfo, bool]]:
        """Every function/method that creates a tape node via ``_make``.

        Returns ``(function, has_backward_closure)`` pairs, where the
        closure is an inner ``def backward*`` or a lambda handed to
        ``_make`` — the hand-derived gradient D001 audits.
        """
        ops: List[Tuple[FunctionInfo, bool]] = []
        for fi in self.functions.values():
            makes = [
                n
                for n in ast.walk(fi.node)
                if isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "_make"
            ]
            if not makes:
                continue
            has_closure = any(
                isinstance(n, ast.FunctionDef) and n.name.startswith("backward")
                for n in ast.walk(fi.node)
                if n is not fi.node
            ) or any(
                any(isinstance(a, ast.Lambda) for a in m.args) for m in makes
            )
            ops.append((fi, has_closure))
        return ops
