"""T3S (Yang et al., ICDE 2021) — self-attention plus LSTM.

T3S argues an LSTM alone misses the structural importance of individual
points and adds a Transformer-style self-attention network over the point
embeddings of the *single* trajectory.  The structural (attention) and
spatial (LSTM) representations are combined with a learned mixing weight.
Crucially — and this is the gap TMN targets — the attention never looks at
the other trajectory of the pair.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..core.config import TMNConfig
from ..nn import Linear, Parameter, SelfAttention
from .base import SiameseTrajectoryModel

__all__ = ["T3S"]


class T3S(SiameseTrajectoryModel):
    """Siamese encoder combining LSTM and intra-trajectory self-attention."""

    def __init__(self, config: Optional[TMNConfig] = None, max_len: int = 512):
        super().__init__(config)
        d = self.config.hidden_dim
        d_hat = self.config.embed_dim
        self.attention = SelfAttention(d_hat, rng=self._rng)
        self.attn_proj = Linear(d_hat, d, rng=self._rng)
        # Sinusoidal positional encoding so self-attention sees point order.
        self._pos_table = _sinusoidal_table(max_len, d_hat)
        # Learned mixing logit gamma: output = s*LSTM + (1-s)*attention,
        # s = sigmoid(gamma); initialised to an even blend.
        self.gamma = Parameter(np.zeros(1), name="gamma")

    def encode_side(self, points: np.ndarray, lengths: np.ndarray, mask: np.ndarray) -> Tensor:
        """Blend LSTM (spatial) and self-attention (structural) representations."""
        batch, steps, _ = points.shape
        if steps > len(self._pos_table):
            raise ValueError(
                f"sequence length {steps} exceeds positional table "
                f"({len(self._pos_table)}); raise max_len"
            )
        x = self.act(self.point_embed(Tensor(points)))
        lstm_out, _ = self.lstm(x, mask=mask)
        attn_in = x + Tensor(self._pos_table[None, :steps, :])
        attn_out = self.attn_proj(self.attention(attn_in, mask=mask))
        s = self.gamma.sigmoid()
        return lstm_out * s + attn_out * (1.0 - s)

    @staticmethod
    def recommended_config(**overrides) -> TMNConfig:
        """T3S uses near/far sampling without sub-trajectory supervision."""
        defaults = dict(sub_loss=False, sampler="rank")
        defaults.update(overrides)
        return TMNConfig(**defaults)


def _sinusoidal_table(max_len: int, dim: int) -> np.ndarray:
    """Standard Transformer sinusoidal positional encodings."""
    position = np.arange(max_len)[:, None]
    # Exponent is <= 0 for any positive dim; this builds a constant table.
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))  # lint: allow(N001)
    table = np.zeros((max_len, dim))
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: (dim + 1) // 2][: table[:, 1::2].shape[1]])
    return table
