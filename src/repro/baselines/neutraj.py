"""NeuTraj (Yao et al., ICDE 2019) — grid-augmented LSTM with the SAM
spatial attention memory.

NeuTraj represents every point both by its coordinates and by the grid cell
it falls in.  A spatial attention memory (SAM) stores, per grid cell, a
summary of the hidden states produced whenever a processed trajectory
visited that cell; at each step the model reads an attention-weighted
summary of the current cell's neighbourhood and mixes it into the hidden
state through a learned gate.  The memory lets representations share
information across historically processed trajectories.

Reproduction notes: the memory is a plain (non-differentiable) buffer — the
read content is treated as a constant input, as a memory of *past* states
must be — while the gate that mixes it in is trained by backprop.  Writes
are exponential moving averages and occur only in training mode.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, concat, where
from ..core.config import TMNConfig
from ..data.grid import GridMapper
from ..nn import Linear, Parameter
from ..nn import init as nn_init
from .base import SiameseTrajectoryModel

__all__ = ["NeuTraj"]


class NeuTraj(SiameseTrajectoryModel):
    """Grid-augmented siamese LSTM with spatial attention memory.

    Parameters
    ----------
    config:
        Shared model/training configuration.
    n_cells:
        Grid resolution per axis (the cell count is ``n_cells^2``).
    memory_decay:
        EMA coefficient for SAM writes (fraction of the old memory kept).
    """

    def __init__(
        self,
        config: Optional[TMNConfig] = None,
        n_cells: int = 24,
        memory_decay: float = 0.5,
    ):
        self._n_cells = n_cells
        if config is not None and config.backbone != "lstm":
            raise ValueError("NeuTraj's SAM integration is defined for the LSTM backbone")
        super().__init__(config)
        d = self.config.hidden_dim
        d_hat = self.config.embed_dim
        if not 0.0 <= memory_decay < 1.0:
            raise ValueError("memory_decay must be in [0, 1)")
        self.memory_decay = memory_decay
        self.cell_embed = Parameter(
            nn_init.xavier_uniform((n_cells * n_cells, d_hat), self._rng),
            name="cell_embed",
        )
        # Gate deciding how much memory content enters the hidden state.
        self.memory_gate = Linear(2 * d, d, rng=self._rng)
        self.grid: Optional[GridMapper] = None
        self._memory: Optional[np.ndarray] = None
        self._memory_count: Optional[np.ndarray] = None
        self._neighbor_table: Optional[np.ndarray] = None

    def lstm_input_dim(self) -> int:
        """Coordinate embedding concatenated with the grid-cell embedding."""
        return 2 * self.config.embed_dim

    # ------------------------------------------------------------------
    def prepare(self, points_list: Sequence[np.ndarray]) -> None:
        """Fit the grid over the training corpus and reset the memory."""
        all_points = np.concatenate([np.asarray(p) for p in points_list], axis=0)
        self.grid = GridMapper.fit(all_points, n_cells=self._n_cells)
        d = self.config.hidden_dim
        self._memory = np.zeros((self.grid.num_cells, d))
        self._memory_count = np.zeros(self.grid.num_cells)
        # Precompute each cell's neighbourhood (3x3, padded with self).
        table = np.empty((self.grid.num_cells, 9), dtype=int)
        for cell in range(self.grid.num_cells):
            neigh = self.grid.neighbors(cell, radius=1)
            padded = neigh + [cell] * (9 - len(neigh))
            table[cell] = padded
        self._neighbor_table = table

    def _require_grid(self) -> GridMapper:
        if self.grid is None:
            raise RuntimeError(
                "NeuTraj.prepare() must run before encoding; the Trainer "
                "calls it automatically with the training trajectories"
            )
        return self.grid

    # ------------------------------------------------------------------
    def _memory_read(self, cell_ids: np.ndarray, query: Tensor) -> Tensor:
        """SAM read: attention over the cell neighbourhood's memories.

        The memory *content* is a constant buffer (it stores past hidden
        states), but the attention weights are computed against the current
        hidden state, so gradients flow through the read like in NeuTraj.
        Cells never written are masked out; rows with no written
        neighbours read zeros.
        """
        from ..autograd import masked_softmax

        neighbors = self._neighbor_table[cell_ids]  # (B, 9)
        vectors = self._memory[neighbors]  # (B, 9, d)
        valid = self._memory_count[neighbors] > 0  # (B, 9)
        content = Tensor(vectors)
        scores = (query.expand_dims(1) @ content.swapaxes(1, 2)).squeeze(1)  # (B, 9)
        weights = masked_softmax(scores, valid, axis=-1)
        return (weights.expand_dims(1) @ content).squeeze(1)  # (B, d)

    def _memory_write(self, cell_ids: np.ndarray, hidden: np.ndarray) -> None:
        decay = self.memory_decay
        for cell, vec in zip(cell_ids, hidden):
            if self._memory_count[cell] > 0:
                self._memory[cell] = decay * self._memory[cell] + (1 - decay) * vec
            else:
                self._memory[cell] = vec
            self._memory_count[cell] += 1.0

    # ------------------------------------------------------------------
    def encode_side(self, points: np.ndarray, lengths: np.ndarray, mask: np.ndarray) -> Tensor:
        """Grid-augmented LSTM encoding with SAM reads/writes per step."""
        grid = self._require_grid()
        batch, steps, _ = points.shape
        cell_ids = grid.cell_ids(points.reshape(-1, 2)).reshape(batch, steps)

        coord_emb = self.act(self.point_embed(Tensor(points)))
        cell_emb = self.cell_embed[cell_ids.ravel()].reshape(batch, steps, -1)
        features = concat([coord_emb, cell_emb], axis=-1)

        d = self.config.hidden_dim
        h = Tensor(np.zeros((batch, d)))
        c = Tensor(np.zeros((batch, d)))
        outputs: List[Tensor] = []
        from ..autograd import stack

        for t in range(steps):
            x_t = features[:, t, :]
            h_new, c_new = self.lstm.cell(x_t, (h, c))
            read = self._memory_read(cell_ids[:, t], h_new)
            gate = self.memory_gate(concat([h_new, read], axis=-1)).sigmoid()
            h_aug = h_new + gate * read
            m = mask[:, t : t + 1]
            h = where(m, h_aug, h)
            c = where(m, c_new, c)
            if self.training:
                valid = mask[:, t]
                if np.any(valid):
                    self._memory_write(cell_ids[valid, t], h.data[valid])
            outputs.append(h)
        return stack(outputs, axis=1)

    @staticmethod
    def recommended_config(**overrides) -> TMNConfig:
        """NeuTraj samples near/far anchors but has no sub-trajectory loss."""
        defaults = dict(sub_loss=False, sampler="rank")
        defaults.update(overrides)
        return TMNConfig(**defaults)
