"""Traj2SimVec (Zhang et al., IJCAI 2020) — simplification, k-d tree
sampling and sub-trajectory supervision.

Traj2SimVec's contributions are around the *training procedure* rather than
the encoder: trajectories are compressed evenly into fixed-length vectors
stored in a k-d tree; near training samples always come from each anchor's
k nearest tree neighbours (k = 5 in their paper); and a sub-trajectory loss
adds supervision from prefix distances.  The encoder itself is an LSTM over
coordinate embeddings, like SRN.

In this framework those pieces map onto configuration: the model class is a
siamese LSTM whose :meth:`recommended_config` turns on the k-d tree sampler
and the sub-trajectory loss (both implemented in ``repro.core``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import TMNConfig
from ..core.sampling import simplify_trajectory
from ..index import KDTree
from .base import SiameseTrajectoryModel

__all__ = ["Traj2SimVec"]


class Traj2SimVec(SiameseTrajectoryModel):
    """Siamese LSTM trained with k-d tree sampling + sub-trajectory loss.

    The simplified-vector k-d tree is also exposed on the model (built in
    :meth:`prepare`) for inspection and for nearest-neighbour queries that
    mirror the original system's sampling structure.
    """

    def __init__(self, config: Optional[TMNConfig] = None, n_segments: int = 10):
        super().__init__(config)
        if n_segments < 2:
            raise ValueError("n_segments must be >= 2")
        self.n_segments = n_segments
        self.tree: Optional[KDTree] = None
        self.simplified: Optional[np.ndarray] = None

    def prepare(self, points_list: Sequence[np.ndarray]) -> None:
        """Simplify the corpus and build the k-d tree over the vectors."""
        self.simplified = np.stack(
            [simplify_trajectory(np.asarray(p), n_segments=self.n_segments) for p in points_list]
        )
        self.tree = KDTree(self.simplified)

    @staticmethod
    def recommended_config(**overrides) -> TMNConfig:
        """The paper's Traj2SimVec setup: k-d tree sampler (k = 5) and
        sub-trajectory loss enabled."""
        defaults = dict(sub_loss=True, sampler="kdtree", kd_neighbors=5)
        defaults.update(overrides)
        return TMNConfig(**defaults)
