"""Shared siamese backbone for the baseline models.

SRN, NeuTraj, T3S and Traj2SimVec all encode each trajectory independently
with an LSTM backbone (Section II-D); they differ in what they add around
it.  This base class implements the common encode-one-side path so each
baseline only specifies its augmentation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..core.config import TMNConfig
from ..core.model import TrajectoryPairModel, make_rnn
from ..nn import LSTM, LeakyReLU, Linear

__all__ = ["SiameseTrajectoryModel"]


class SiameseTrajectoryModel(TrajectoryPairModel):
    """LSTM encoder applied independently to both sides of a pair.

    Subclasses override :meth:`encode_side` (or just :meth:`step_features`)
    to inject their model-specific structure.
    """

    def __init__(self, config: Optional[TMNConfig] = None):
        super().__init__()
        self.config = config if config is not None else TMNConfig()
        self._rng = np.random.default_rng(self.config.seed)
        d = self.config.hidden_dim
        d_hat = self.config.embed_dim
        self.output_dim = d
        self.point_embed = Linear(2, d_hat, rng=self._rng)
        self.act = LeakyReLU(0.1)
        self.lstm = make_rnn(self.config.backbone, self.lstm_input_dim(), d, self._rng)

    def lstm_input_dim(self) -> int:
        """Feature dimension fed to the LSTM; defaults to the point embedding."""
        return self.config.embed_dim

    def step_features(self, points: np.ndarray, mask: np.ndarray) -> Tensor:
        """Per-step features (B, T, lstm_input_dim) before the LSTM."""
        return self.act(self.point_embed(Tensor(points)))

    def encode_side(self, points: np.ndarray, lengths: np.ndarray, mask: np.ndarray) -> Tensor:
        """Per-step representations (B, T, d) for one side of the pair."""
        features = self.step_features(points, mask)
        outputs, _ = self.lstm(features, mask=mask)
        return outputs

    def forward_pair(self, points_a, lengths_a, mask_a, points_b, lengths_b, mask_b):
        """Encode both sides independently (siamese behaviour)."""
        out_a = self.encode_side(points_a, lengths_a, mask_a)
        out_b = self.encode_side(points_b, lengths_b, mask_b)
        return out_a, out_b
