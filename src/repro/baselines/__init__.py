"""Baseline models compared against TMN in the paper (Section V-A2)."""

from .base import SiameseTrajectoryModel
from .neutraj import NeuTraj
from .srn import SRN
from .t3s import T3S
from .traj2simvec import Traj2SimVec

__all__ = ["SiameseTrajectoryModel", "SRN", "NeuTraj", "T3S", "Traj2SimVec"]
