"""SRN — Siamese Recurrent Network (Pei, Tax & van der Maaten, 2016).

The simplest baseline: a shared LSTM over the raw coordinate embeddings of
both trajectories; the final hidden states are compared with Euclidean
distance.  Following the paper, SRN is implemented with an LSTM.
"""

from __future__ import annotations

from ..core.config import TMNConfig
from .base import SiameseTrajectoryModel

__all__ = ["SRN"]


class SRN(SiameseTrajectoryModel):
    """Plain siamese LSTM; the base class already does everything needed."""

    @staticmethod
    def recommended_config(**overrides) -> TMNConfig:
        """Training configuration used in the paper's comparison.

        SRN has neither sub-trajectory loss nor special sampling.
        """
        defaults = dict(sub_loss=False, sampler="rank")
        defaults.update(overrides)
        return TMNConfig(**defaults)
