"""Composite and multi-input autodiff operations.

Functions here operate on :class:`repro.autograd.tensor.Tensor` objects and
participate in the tape.  They cover the operations the TMN paper needs that
are not natural as ``Tensor`` methods: softmax (with padding masks, Eq. 7),
concatenation (Eq. 12), stacking LSTM time steps, and elementwise selection.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .tensor import Tensor, _unbroadcast, profiled_op

ArrayLike = Union[np.ndarray, float, int]

__all__ = [
    "softmax",
    "masked_softmax",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "clip",
    "euclidean_distance",
    "dot_rows",
]


@profiled_op
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    # Denominator >= 1: after max-subtraction exps contains exp(0) = 1.
    out_data = exps / exps.sum(axis=axis, keepdims=True)  # lint: allow(N003)

    def backward(grad: np.ndarray, a=x) -> None:
        # d softmax = s * (grad - sum(grad * s))
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        out._send(a, out_data * (grad - inner))

    out = Tensor._make(out_data, (x,), backward)
    return out


@profiled_op
def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that ignores positions where ``mask`` is False.

    Used for the match pattern over padded trajectories (Section IV-B):
    padded points must receive zero attention weight.  Rows whose mask is
    entirely False produce all-zero outputs rather than NaNs.

    Parameters
    ----------
    x:
        Scores tensor.
    mask:
        Boolean array broadcastable to ``x.shape``; True marks valid points.
    """
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), x.shape)
    neg_inf = np.where(mask, 0.0, -np.inf)
    shifted = x.data + neg_inf
    row_max = shifted.max(axis=axis, keepdims=True)
    # Rows that are fully masked have row_max == -inf; neutralise them.
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    exps = np.exp(np.where(mask, shifted - row_max, -np.inf))
    exps = np.where(mask, exps, 0.0)
    denom = exps.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom == 0.0, 1.0, denom)
    out_data = exps / safe_denom

    def backward(grad: np.ndarray, a=x) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        out._send(a, out_data * (grad - inner))

    out = Tensor._make(out_data, (x,), backward)
    return out


@profiled_op
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (autodiff-aware ``np.concatenate``)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            out._send(t, grad[tuple(index)])

    out = Tensor._make(out_data, tensors, backward)
    return out


@profiled_op
def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (autodiff-aware ``np.stack``)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, t in enumerate(tensors):
            out._send(t, moved[i])

    out = Tensor._make(out_data, tensors, backward)
    return out


@profiled_op
def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where ``condition`` else ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        out._send(a, _unbroadcast(np.where(condition, grad, 0.0), a.shape))
        out._send(b, _unbroadcast(np.where(condition, 0.0, grad), b.shape))

    out = Tensor._make(out_data, (a, b), backward)
    return out


@profiled_op
def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties send the full gradient to ``a``."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    take_a = a.data >= b.data
    return where(take_a, a, b)


@profiled_op
def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; ties send the full gradient to ``a``."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    take_a = a.data <= b.data
    return where(take_a, a, b)


@profiled_op
def clip(x: Tensor, low: Optional[float], high: Optional[float]) -> Tensor:
    """Clamp values into ``[low, high]``; gradient is zero outside the range."""
    lo = -np.inf if low is None else low
    hi = np.inf if high is None else high
    inside = (x.data >= lo) & (x.data <= hi)
    out_data = np.clip(x.data, lo, hi)

    def backward(grad: np.ndarray, a=x) -> None:
        out._send(a, grad * inside)

    out = Tensor._make(out_data, (x,), backward)
    return out


@profiled_op
def euclidean_distance(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Euclidean distance ``||a - b||`` along ``axis``.

    This is the predicted-similarity kernel of every model in the paper:
    trajectory embeddings are compared with the L2 distance.  ``eps`` keeps
    the square root differentiable at zero.
    """
    diff = a - b
    sq = (diff * diff).sum(axis=axis)
    return (sq + eps).sqrt()


@profiled_op
def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product of two equally shaped tensors along the last axis."""
    return (a * b).sum(axis=-1)
