"""Numpy-backed reverse-mode automatic differentiation engine.

This package substitutes for PyTorch in the TMN reproduction.  It provides:

- :class:`Tensor` — an ndarray wrapper that records a computation tape;
- composite operations (:func:`softmax`, :func:`concat`, ...);
- finite-difference gradient checking (:mod:`repro.autograd.gradcheck`).
"""

from .gradcheck import check_gradients, numeric_gradient
from .ops import (
    clip,
    concat,
    dot_rows,
    euclidean_distance,
    masked_softmax,
    maximum,
    minimum,
    softmax,
    stack,
    where,
)
from .tensor import Tensor, is_grad_enabled, no_grad, profiled_op

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "profiled_op",
    "softmax",
    "masked_softmax",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "clip",
    "euclidean_distance",
    "dot_rows",
    "check_gradients",
    "numeric_gradient",
]
