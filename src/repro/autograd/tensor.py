"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class, a thin wrapper around
``numpy.ndarray`` that records a dynamic computation graph (a "tape") as
operations are applied.  Calling :meth:`Tensor.backward` on a scalar result
walks the tape in reverse topological order and accumulates gradients into
every tensor created with ``requires_grad=True``.

The engine substitutes for PyTorch in this reproduction (PyTorch is not
available offline); it implements exactly the primitives needed by the TMN
paper: broadcast-aware arithmetic, matrix multiplication (including batched),
the usual activations, softmax, reductions, concatenation and indexing.
Gradients are validated against central finite differences in the test suite
(see ``repro.autograd.gradcheck``).
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "profiled_op"]

_GRAD_ENABLED = True

#: Active op profiler (see :mod:`repro.obs.profile`), or None.  Kept here so
#: every op — Tensor method or free function — can reach it with one global
#: read; installing/removing it is the profiler's job via :func:`_set_profiler`.
_PROFILER = None


def _set_profiler(profiler) -> None:
    """Install (or, with None, remove) the active op profiler.

    Called only by :class:`repro.obs.profile.OpProfiler`; the engine itself
    never imports ``repro.obs``.
    """
    global _PROFILER
    _PROFILER = profiler


def profiled_op(fn):
    """Make a free-function autodiff op visible to the op profiler.

    Tensor *methods* are intercepted by class-attribute patching while a
    profiler is enabled, which costs nothing when disabled.  Free-function
    ops (``repro.autograd.ops``, ``repro.nn.fused``) are bound by name at
    their import sites, so patching cannot reach them; this decorator adds
    the hook at the definition instead.  Disabled cost is one global read
    per call.  The original is kept on ``__wrapped__`` (via functools).
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        profiler = _PROFILER
        if profiler is None:
            return fn(*args, **kwargs)
        return profiler.call(name, fn, args, kwargs)

    return wrapper


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block all operations produce detached
    tensors, mirroring ``torch.no_grad``.  Useful during evaluation where
    building the tape would only waste memory.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the computation graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    When the forward pass broadcast an operand up to a larger shape, the
    gradient flowing back must be summed over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(data, np.ndarray):
        arr = data
    else:
        arr = np.asarray(data)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype.kind in "iub":
        arr = arr.astype(np.float64)
    return arr


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Integer inputs are promoted to float64.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_sink",
        "name",
    )

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Numpy dtype of the payload."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose (reverses all axes), autodiff-aware."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single scalar value (errors for non-scalars)."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the tape (if grad is enabled)."""
        parents = tuple(parents)
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad)
        if needs_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            ones (only valid for scalar tensors, as in PyTorch).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only "
                    "supported for scalar tensors"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological sort (iterative to avoid recursion limits on long
        # LSTM chains).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
            if node._backward is not None:
                # _backward closures stash partial gradients via the shared
                # dict through _receive below.
                node._grad_sink = grads  # type: ignore[attr-defined]
                node._backward(node_grad)
                del node._grad_sink  # type: ignore[attr-defined]

    # The backward closures cannot see the `grads` dict directly, so each op
    # routes parent gradients through this helper.
    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        if not (parent.requires_grad or parent._backward is not None):
            return
        sink = getattr(self, "_grad_sink")
        key = id(parent)
        if key in sink:
            sink[key] = sink[key] + grad
        else:
            sink[key] = grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray, a=self, b=other) -> None:
            out._send(a, _unbroadcast(grad, a.shape))
            out._send(b, _unbroadcast(grad, b.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray, a=self, b=other) -> None:
            out._send(a, _unbroadcast(grad, a.shape))
            out._send(b, _unbroadcast(-grad, b.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray, a=self, b=other) -> None:
            out._send(a, _unbroadcast(grad * b.data, a.shape))
            out._send(b, _unbroadcast(grad * a.data, b.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray, a=self, b=other) -> None:
            out._send(a, _unbroadcast(grad / b.data, a.shape))
            out._send(b, _unbroadcast(-grad * a.data / (b.data**2), b.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, -grad)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray, a=self, n=exponent) -> None:
            out._send(a, grad * n * a.data ** (n - 1))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray, a=self, b=other) -> None:
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                out._send(a, grad * b_data)
                out._send(b, grad * a_data)
                return
            if a_data.ndim == 1:
                a_mat = a_data[None, :]
                grad_mat = grad[None, ...] if grad.ndim == b_data.ndim - 1 else grad
                out._send(a, _unbroadcast(grad_mat @ np.swapaxes(b_data, -1, -2), a.shape))
                out._send(b, _unbroadcast(np.swapaxes(a_mat, -1, -2) @ grad_mat, b.shape))
                return
            if b_data.ndim == 1:
                grad_col = grad[..., None]
                out._send(a, _unbroadcast(grad_col * b_data, a.shape))
                out._send(b, _unbroadcast((np.swapaxes(a_data, -1, -2) @ grad_col)[..., 0], b.shape))
                return
            out._send(a, _unbroadcast(grad @ np.swapaxes(b_data, -1, -2), a.shape))
            out._send(b, _unbroadcast(np.swapaxes(a_data, -1, -2) @ grad, b.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        # lint: allow(N001) — raw engine op; bounding the argument is the
        # caller's contract (ops.softmax subtracts the row max first).
        out_data = np.exp(self.data)  # lint: allow(N001)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        # lint: allow(N002) — raw engine op; adding eps here would bias every
        # caller, so guarding is the caller's contract (see core.similarity).
        out_data = np.log(self.data)  # lint: allow(N002)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad / a.data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        # lint: allow(N002) — raw engine op; callers add eps before the call
        # (see ops.euclidean_distance), keeping the gradient finite at 0.
        out_data = np.sqrt(self.data)  # lint: allow(N002)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * 0.5 / out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * (1.0 - out_data**2))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (overflow-free two-branch form)."""
        z = np.exp(-np.abs(self.data))
        out_data = np.where(self.data >= 0, 1.0 / (1.0 + z), z / (1.0 + z))

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * mask)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def leaky_relu(self, negative_slope: float = 0.1) -> "Tensor":
        """LeakyReLU with the paper's slope of 0.1 (Eq. 5)."""
        mask = self.data >= 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * np.where(mask, 1.0, negative_slope))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value (sign gradient)."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad * np.sign(a.data))

        out = Tensor._make(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axis (or everything), autodiff-aware."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, a=self) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._send(a, np.broadcast_to(g, a.shape).copy())

        out = Tensor._make(out_data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or everything)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[ax] for ax in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis; ties split the gradient."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, a=self) -> None:
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            # Exact equality is how argmax ties are identified: `expanded`
            # holds copies of values taken from `a.data` itself.
            mask = a.data == expanded  # lint: allow(N004)
            # Split gradient equally among ties, as PyTorch does for amax.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            out._send(a, g * mask / counts)

        out = Tensor._make(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape (same number of elements)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad.reshape(a.shape))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (defaults to full reversal)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad.transpose(inverse))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes."""
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(axes)

    def expand_dims(self, axis: int) -> "Tensor":
        """Insert a length-1 axis at the given position."""
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, np.squeeze(grad, axis=axis))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        """Remove length-1 axes (optionally one specific axis)."""
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad.reshape(a.shape))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        """Broadcast to a larger shape; gradient sums back."""
        out_data = np.broadcast_to(self.data, shape)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, _unbroadcast(grad, a.shape))

        out = Tensor._make(np.array(out_data), (self,), backward)
        return out

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray, a=self) -> None:
            full = np.zeros_like(a.data)
            np.add.at(full, key, grad)
            out._send(a, full)

        out = Tensor._make(np.array(out_data), (self,), backward)
        return out
