"""Finite-difference gradient verification.

Used by the test suite to validate every primitive in the autodiff engine,
and available to users who add new ops.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping Tensors to a Tensor.
    inputs:
        Raw numpy arrays; the one at ``index`` is perturbed.
    index:
        Which input to differentiate with respect to.
    eps:
        Perturbation size.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]
    target = base[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]
        target[idx] = original + eps
        plus = float(fn(*[Tensor(x) for x in base]).data.sum())
        target[idx] = original - eps
        minus = float(fn(*[Tensor(x) for x in base]).data.sum())
        target[idx] = original
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numeric gradients for every input of ``fn``.

    Returns True when all gradients match; raises ``AssertionError`` with a
    diagnostic message otherwise.
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        numeric = numeric_gradient(fn, [x.data for x in tensors], i, eps=eps)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
