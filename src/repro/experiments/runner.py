"""Config-driven experiment runner: one function per paper table/figure.

Every run is deterministic given (scale, seed).  Ground-truth matrices are
cached per (dataset, metric) inside a :class:`Corpus`, since they dominate
the cost and are shared by all six models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import Trainer, pair_distance_matrix
from ..data import make_dataset, prepare
from ..eval import (
    evaluate_rankings,
    time_encoding,
    time_exact_metric,
    time_vector_similarity,
)
from ..metrics import pairwise_distance_matrix
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.spans import span
from .configs import MODEL_NAMES, Scale, build_model

_log = get_logger("repro.experiments")

__all__ = ["Corpus", "RunResult", "load_corpus", "run_model", "effectiveness_table", "efficiency_table"]

#: Evaluation bundle used throughout (scaled-down HR-10/HR-50/R10@50: with
#: ~50 test trajectories the paper's k = 50 would span the whole database,
#: so k is scaled to 5/10 with recall R5@10).
HR_KS = (5, 10)
RECALL = (5, 10)


@dataclass
class Corpus:
    """A prepared dataset split plus cached ground-truth matrices."""

    kind: str
    train_points: List[np.ndarray]
    test_points: List[np.ndarray]
    seed: int
    _train_gt: Dict[str, np.ndarray] = field(default_factory=dict)
    _test_gt: Dict[str, np.ndarray] = field(default_factory=dict)

    def train_distances(self, metric: str) -> np.ndarray:
        """Ground-truth train-set matrix under `metric`, cached."""
        if metric not in self._train_gt:
            self._train_gt[metric] = pairwise_distance_matrix(self.train_points, metric)
        return self._train_gt[metric]

    def test_distances(self, metric: str) -> np.ndarray:
        """Ground-truth test-set matrix under `metric`, cached."""
        if metric not in self._test_gt:
            self._test_gt[metric] = pairwise_distance_matrix(self.test_points, metric)
        return self._test_gt[metric]


def load_corpus(kind: str, scale: Scale, seed: int = 0) -> Corpus:
    """Generate, preprocess and split a synthetic corpus.

    Mirrors Section V-A1: centre-area filtering, minimum length 10 (scaled:
    the generators respect it by construction), then a train/test split.
    """
    raw = make_dataset(kind, scale.n_raw, seed=seed)
    ds, _ = prepare(raw)
    needed = scale.train_size + scale.test_size
    if len(ds) < needed:
        raise ValueError(
            f"preprocessing left {len(ds)} trajectories, need {needed}; "
            f"raise scale.n_raw"
        )
    rng = np.random.default_rng(seed + 10)
    order = rng.permutation(len(ds))
    train_idx = order[: scale.train_size]
    test_idx = order[scale.train_size : needed]
    return Corpus(
        kind=kind,
        train_points=[ds[int(i)].points for i in train_idx],
        test_points=[ds[int(i)].points for i in test_idx],
        seed=seed,
    )


@dataclass
class RunResult:
    """Outcome of training + evaluating one model under one metric."""

    model_name: str
    metric: str
    dataset: str
    scores: Dict[str, float]
    train_seconds_per_epoch: float
    final_loss: float


def run_model(
    name: str,
    corpus: Corpus,
    metric: str,
    scale: Scale,
    seed: int = 0,
    config_overrides: Optional[dict] = None,
) -> RunResult:
    """Train one model on a corpus and evaluate top-k search quality."""
    model, config = build_model(name, scale, seed=seed)
    if config_overrides:
        config = config.with_updates(**config_overrides)
        model = type(model)(config)  # every model takes its config first
    trainer = Trainer(model, config, metric=metric)
    with span("experiment"):
        with span("train"):
            history = trainer.fit(corpus.train_points, distances=corpus.train_distances(metric))
        with span("predict"):
            pred = pair_distance_matrix(model, corpus.test_points)
        with span("evaluate"):
            scores = evaluate_rankings(
                corpus.test_distances(metric), pred, hr_ks=HR_KS, recall=RECALL
            )
    get_registry().counter("experiments.models_trained").inc()
    _log.debug(
        "run_model",
        model=name,
        metric=metric,
        dataset=corpus.kind,
        final_loss=history.final_loss,
        grad_norm=history.grad_norms[-1],
    )
    return RunResult(
        model_name=name,
        metric=metric,
        dataset=corpus.kind,
        scores=scores,
        train_seconds_per_epoch=float(np.mean(history.epoch_seconds)),
        final_loss=history.final_loss,
    )


def effectiveness_table(
    corpus: Corpus,
    metrics: Sequence[str],
    scale: Scale,
    models: Sequence[str] = MODEL_NAMES,
    seed: int = 0,
) -> List[RunResult]:
    """Table II: every model under every metric on one corpus."""
    results = []
    for metric in metrics:
        for name in models:
            results.append(run_model(name, corpus, metric, scale, seed=seed))
    return results


def efficiency_table(
    corpus: Corpus,
    scale: Scale,
    exact_metrics: Sequence[str] = ("frechet", "dtw", "erp"),
    model_names: Sequence[str] = ("SRN", "NeuTraj", "T3S", "TMN"),
    seed: int = 0,
) -> List[dict]:
    """Table III: exact-metric all-pairs time vs learned three-phase time."""
    rows: List[dict] = []
    for metric in exact_metrics:
        seconds = time_exact_metric(corpus.test_points, metric)
        rows.append(
            {
                "method": metric,
                "training_s": None,
                "inference_s": None,
                "computation_s": seconds,
            }
        )
    for name in model_names:
        model, config = build_model(name, scale, seed=seed)
        trainer = Trainer(model, config, metric="dtw")
        history = trainer.fit(
            corpus.train_points, distances=corpus.train_distances("dtw")
        )
        inference = time_encoding(model, corpus.test_points)
        embeddings = model.encode(corpus.test_points[:8])
        computation = time_vector_similarity(embeddings, repeats=2_000)
        rows.append(
            {
                "method": name,
                "training_s": float(np.mean(history.epoch_seconds)),
                "inference_s": inference,
                "computation_s": computation,
            }
        )
    return rows
