"""Experiment scales and model factories.

The paper trains on thousands of GPS trajectories for many epochs on a GPU;
this CPU reproduction runs the identical pipelines at reduced scale.  A
:class:`Scale` bundles every knob so each bench declares which preset it
uses, and EXPERIMENTS.md can state the exact reduction applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..baselines import SRN, NeuTraj, T3S, Traj2SimVec
from ..core import TMN, TMNConfig, TrajectoryPairModel

__all__ = ["Scale", "SMOKE", "BENCH", "PAPER", "MODEL_NAMES", "build_model"]


@dataclass(frozen=True)
class Scale:
    """Knobs of one experiment run.

    ``n_raw`` trajectories are generated, preprocessed (which removes some),
    then split ``train_size`` / ``test_size``.
    """

    name: str
    n_raw: int
    train_size: int
    test_size: int
    hidden_dim: int
    epochs: int
    sampling_number: int
    batch_anchors: int = 8

    def base_config(self, **overrides) -> Dict:
        """Keyword arguments shared by every model's TMNConfig."""
        params = dict(
            hidden_dim=self.hidden_dim,
            epochs=self.epochs,
            sampling_number=self.sampling_number,
            batch_anchors=self.batch_anchors,
        )
        params.update(overrides)
        return params


#: Minimal scale for integration tests: seconds per run.
SMOKE = Scale("smoke", n_raw=130, train_size=25, test_size=30, hidden_dim=16, epochs=2, sampling_number=6)

#: Benchmark scale: the full table/figure suite completes on CPU in minutes.
BENCH = Scale("bench", n_raw=240, train_size=40, test_size=40, hidden_dim=32, epochs=16, sampling_number=10)

#: The paper's published settings (documented; impractical without a GPU).
PAPER = Scale("paper", n_raw=10_000, train_size=2_000, test_size=8_000, hidden_dim=128, epochs=50, sampling_number=20)

#: Display order of the Table II rows.
MODEL_NAMES: Tuple[str, ...] = ("SRN", "NeuTraj", "T3S", "Traj2SimVec", "TMN-NM", "TMN")


def build_model(name: str, scale: Scale, seed: int = 0) -> Tuple[TrajectoryPairModel, TMNConfig]:
    """Instantiate a named model with its paper-faithful training config."""
    base = scale.base_config(seed=seed)
    if name == "SRN":
        config = SRN.recommended_config(**base)
        return SRN(config), config
    if name == "NeuTraj":
        config = NeuTraj.recommended_config(**base)
        return NeuTraj(config), config
    if name == "T3S":
        config = T3S.recommended_config(**base)
        return T3S(config), config
    if name == "Traj2SimVec":
        config = Traj2SimVec.recommended_config(**base)
        return Traj2SimVec(config), config
    if name == "TMN":
        config = TMNConfig(matching=True, sub_loss=True, **base)
        return TMN(config), config
    if name == "TMN-NM":
        config = TMNConfig(matching=False, sub_loss=True, **base)
        return TMN(config), config
    if name == "TMN-kd":
        config = TMNConfig(matching=True, sub_loss=True, sampler="kdtree", **base)
        return TMN(config), config
    if name == "TMN-noSub":
        config = TMNConfig(matching=True, sub_loss=False, **base)
        return TMN(config), config
    if name == "TMN-qerror":
        config = TMNConfig(matching=True, sub_loss=True, loss="qerror", **base)
        return TMN(config), config
    raise KeyError(f"unknown model {name!r}")
