"""Plain-text rendering of experiment results in the paper's table shapes."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_effectiveness", "format_efficiency", "format_sweep"]


def format_effectiveness(results: Sequence, metrics: Sequence[str]) -> str:
    """Render Table II style rows: model x metric with HR/recall columns."""
    if not results:
        return "(no results)"
    score_keys = list(results[0].scores.keys())
    by_metric: Dict[str, List] = {m: [] for m in metrics}
    for r in results:
        by_metric.setdefault(r.metric, []).append(r)
    lines = []
    header = f"{'Method':<14}" + "".join(f"{k:>10}" for k in score_keys)
    for metric in metrics:
        rows = by_metric.get(metric, [])
        if not rows:
            continue
        lines.append(f"--- {metric.upper()} distance ({rows[0].dataset}) ---")
        lines.append(header)
        best = {k: max(r.scores[k] for r in rows) for k in score_keys}
        for r in rows:
            cells = "".join(
                f"{r.scores[k]:>9.4f}{'*' if r.scores[k] == best[k] else ' '}"
                for k in score_keys
            )
            lines.append(f"{r.model_name:<14}{cells}")
        lines.append("")
    return "\n".join(lines)


def format_efficiency(rows: Sequence[dict]) -> str:
    """Render Table III: training / inference / computation columns."""
    lines = [f"{'Method':<14}{'Training(s)':>14}{'Inference(s)':>14}{'Computation(s)':>16}"]
    for row in rows:
        training = f"{row['training_s']:.3f}" if row["training_s"] is not None else "/"
        inference = f"{row['inference_s']:.6f}" if row["inference_s"] is not None else "/"
        lines.append(
            f"{row['method']:<14}{training:>14}{inference:>14}"
            f"{row['computation_s']:>16.6f}"
        )
    return "\n".join(lines)


def format_sweep(title: str, xs: Sequence, results: Sequence[Dict[str, float]]) -> str:
    """Render a Figure 4/5 style parameter sweep as a table."""
    if len(xs) != len(results):
        raise ValueError("xs and results must align")
    keys = list(results[0].keys())
    lines = [title, f"{'value':<12}" + "".join(f"{k:>10}" for k in keys)]
    for x, scores in zip(xs, results):
        lines.append(f"{str(x):<12}" + "".join(f"{scores[k]:>10.4f}" for k in keys))
    return "\n".join(lines)
