"""Text-mode charts for the paper's figures.

The evaluation figures (3, 4, 5) are line/bar charts; in a terminal-only
environment the benches render them as ASCII so the regenerated artifact is
visually comparable with the paper.  Deliberately dependency-free.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    title: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Render one or more numeric series over shared x positions.

    Each series gets a distinct marker; y axis is annotated with min/max.
    X positions are treated as ordinal (evenly spaced), matching how the
    paper's sweep figures space their ticks.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(f"series {name!r} length does not match xs")
    if len(xs) < 2:
        raise ValueError("need at least two x positions")

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo if hi > lo else 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        for i, value in enumerate(values):
            col = round(i * (width - 1) / (len(xs) - 1))
            row = height - 1 - round((value - lo) / span * (height - 1))
            grid[row][col] = marker

    lines = [title]
    lines.append(f"{hi:8.4f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.4f} ┤" + "".join(grid[-1]))
    x_labels = [str(x) for x in xs]
    lines.append(" " * 10 + x_labels[0] + " ... " + x_labels[-1])
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
) -> str:
    """Horizontal bar chart (used for the Figure 3 loss comparison)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("need at least one bar")
    top = max(values)
    scale = width / top if top > 0 else 0.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title]
    for label, value in zip(labels, values):
        bar = "█" * max(1 if value > 0 else 0, round(value * scale))
        lines.append(f"{str(label):<{label_width}} │{bar} {value:.4f}")
    return "\n".join(lines)
