"""Post-processing of experiment results: winners, gaps and shape checks.

EXPERIMENTS.md compares this reproduction against the paper in terms of
*shapes* — who wins, by roughly what factor, which ablations matter.  The
helpers here compute those statements from a list of
:class:`~repro.experiments.runner.RunResult` so they can be asserted in
benches and printed in reports rather than eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["MetricSummary", "summarize", "winner_table", "ablation_gap"]


@dataclass(frozen=True)
class MetricSummary:
    """Who won one (metric, dataset) block and by how much."""

    metric: str
    dataset: str
    score_key: str
    winner: str
    winner_score: float
    runner_up: str
    runner_up_score: float

    @property
    def margin(self) -> float:
        """Absolute lead of the winner over the runner-up."""
        return self.winner_score - self.runner_up_score


def summarize(results: Sequence, score_key: str = "HR-10") -> List[MetricSummary]:
    """One :class:`MetricSummary` per (metric, dataset) block in ``results``."""
    blocks: Dict[Tuple[str, str], List] = {}
    for r in results:
        blocks.setdefault((r.metric, r.dataset), []).append(r)
    out = []
    for (metric, dataset), rows in sorted(blocks.items()):
        if len(rows) < 2:
            raise ValueError(f"block ({metric}, {dataset}) needs >= 2 models to rank")
        ranked = sorted(rows, key=lambda r: r.scores[score_key], reverse=True)
        out.append(
            MetricSummary(
                metric=metric,
                dataset=dataset,
                score_key=score_key,
                winner=ranked[0].model_name,
                winner_score=ranked[0].scores[score_key],
                runner_up=ranked[1].model_name,
                runner_up_score=ranked[1].scores[score_key],
            )
        )
    return out


def winner_table(results: Sequence, score_key: str = "HR-10") -> str:
    """Plain-text 'winner per metric' table."""
    lines = [f"{'metric':<12}{'dataset':<14}{'winner':<14}{score_key:>8}  margin"]
    for s in summarize(results, score_key=score_key):
        lines.append(
            f"{s.metric:<12}{s.dataset:<14}{s.winner:<14}"
            f"{s.winner_score:>8.4f}  +{s.margin:.4f} vs {s.runner_up}"
        )
    return "\n".join(lines)


def ablation_gap(
    results: Sequence,
    full_model: str = "TMN",
    ablated_model: str = "TMN-NM",
    score_key: str = "HR-10",
) -> Dict[str, float]:
    """Per-metric score drop caused by an ablation (positive = full wins).

    The paper's central claim is that this gap is positive for TMN vs
    TMN-NM on every metric; benches assert exactly that.
    """
    full: Dict[str, float] = {}
    ablated: Dict[str, float] = {}
    for r in results:
        if r.model_name == full_model:
            full[r.metric] = r.scores[score_key]
        elif r.model_name == ablated_model:
            ablated[r.metric] = r.scores[score_key]
    common = set(full) & set(ablated)
    if not common:
        raise ValueError(
            f"results contain no shared metrics for {full_model!r} vs {ablated_model!r}"
        )
    return {metric: full[metric] - ablated[metric] for metric in sorted(common)}
