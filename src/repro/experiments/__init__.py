"""Experiment harness regenerating every table and figure of the paper."""

from .configs import BENCH, MODEL_NAMES, PAPER, SMOKE, Scale, build_model
from .runner import (
    Corpus,
    RunResult,
    effectiveness_table,
    efficiency_table,
    load_corpus,
    run_model,
)
from .plots import ascii_bar_chart, ascii_line_chart
from .summary import MetricSummary, ablation_gap, summarize, winner_table
from .tables import format_effectiveness, format_efficiency, format_sweep

__all__ = [
    "Scale",
    "SMOKE",
    "BENCH",
    "PAPER",
    "MODEL_NAMES",
    "build_model",
    "Corpus",
    "RunResult",
    "load_corpus",
    "run_model",
    "effectiveness_table",
    "efficiency_table",
    "format_effectiveness",
    "format_efficiency",
    "format_sweep",
    "ascii_line_chart",
    "ascii_bar_chart",
    "MetricSummary",
    "summarize",
    "winner_table",
    "ablation_gap",
]
